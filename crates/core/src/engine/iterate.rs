//! The per-iteration update of Equation 3 and the convergence loop
//! (Algorithm 1 lines 2–7, Theorem 1 / Corollary 1).

use super::parallel::{run_parallel, IterationOutcome};
use crate::config::{FsimConfig, InitScheme};
use crate::operators::{OpCtx, OpScratch, Operator, ScoreLookup};
use crate::store::PairStore;
use fsim_graph::{Graph, NodeId};

/// The worker count actually used for a worklist: auto-degraded so each
/// worker owns at least a few thousand pairs (below that, coordination
/// overhead dominates). Hoisted out of the iteration loop — the seed
/// recomputed this, through a full `FsimConfig` clone, on every iteration.
pub(crate) fn effective_threads(cfg_threads: usize, worklist: usize) -> usize {
    cfg_threads.min((worklist / 2048).max(1))
}

/// Writes `FSim⁰` (§3.3) for every maintained pair into `scores`.
pub(crate) fn initialize(
    store: &PairStore,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    g1: &Graph,
    g2: &Graph,
    scores: &mut Vec<f64>,
) {
    scores.clear();
    scores.extend(store.pairs.iter().map(|&(u, v)| match cfg.init {
        InitScheme::LabelSim => ctx.label_sim(u, v),
        InitScheme::Identity => {
            if u == v {
                1.0
            } else {
                0.0
            }
        }
        InitScheme::OutDegreeRatio => {
            let (a, b) = (g1.out_degree(u), g2.out_degree(v));
            let (lo, hi) = (a.min(b), a.max(b));
            if hi == 0 {
                1.0
            } else {
                lo as f64 / hi as f64
            }
        }
        InitScheme::Constant(c) => c,
    }));
}

/// Equation 3 for a single pair.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pair_update<O: Operator, S: ScoreLookup>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    u: NodeId,
    v: NodeId,
    prev: &S,
    scratch: &mut OpScratch,
) -> f64 {
    if cfg.pin_identical && u == v {
        return 1.0;
    }
    let out = op.term(ctx, g1.out_neighbors(u), g2.out_neighbors(v), prev, scratch);
    let inn = op.term(ctx, g1.in_neighbors(u), g2.in_neighbors(v), prev, scratch);
    let label = ctx.label_sim(u, v);
    let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
    // Scores are mathematically confined to [0, 1]; clamp floating drift.
    score.clamp(0.0, 1.0)
}

/// Iterates Equation 3 to convergence (or the iteration cap).
///
/// `scores` holds `FSim⁰` on entry and the final scores on exit; `cur` is
/// the reusable double buffer (resized to match). Dispatches to the
/// sequential loop or to the [`run_parallel`] worker pool — whose results
/// are bitwise identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_to_convergence<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    store: &PairStore,
    scores: &mut Vec<f64>,
    cur: &mut Vec<f64>,
) -> IterationOutcome {
    debug_assert_eq!(scores.len(), store.len());
    cur.clear();
    cur.resize(store.len(), 0.0);
    let max_iters = cfg.effective_max_iters();
    let threads = effective_threads(cfg.threads, store.len());

    if threads > 1 {
        return run_parallel(threads, max_iters, cfg.epsilon, scores, cur, || {
            let mut scratch = OpScratch::new();
            move |slot: usize, prev: &[f64]| {
                let (u, v) = store.pairs[slot];
                let view = store.view(prev);
                pair_update(g1, g2, ctx, cfg, op, u, v, &view, &mut scratch)
            }
        });
    }

    let mut scratch = OpScratch::new();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    while iterations < max_iters {
        let mut delta = 0.0f64;
        {
            let view = store.view(scores);
            for (slot, &(u, v)) in store.pairs.iter().enumerate() {
                let s = pair_update(g1, g2, ctx, cfg, op, u, v, &view, &mut scratch);
                let d = (s - scores[slot]).abs();
                if d > delta {
                    delta = d;
                }
                cur[slot] = s;
            }
        }
        std::mem::swap(scores, cur);
        final_delta = delta;
        iterations += 1;
        if delta < cfg.epsilon {
            converged = true;
            break;
        }
    }
    IterationOutcome {
        iterations,
        converged,
        final_delta,
    }
}
