//! Reusable engine sessions.
//!
//! The paper's workflows — θ sweeps (Fig. 5), variant comparisons
//! (Table 2), repeated top-k passes — re-run the engine many times over the
//! *same* graph pair. A [`FsimEngine`] session precomputes everything that
//! does not depend on the knob being swept: label alignment across the two
//! graphs, the prepared label-similarity table, and the maintained
//! candidate-pair store. [`FsimEngine::rerun`] then re-iterates under a
//! modified configuration, rebuilding only the cached state the change
//! actually invalidates (e.g. a new ε keeps everything; a new θ rebuilds
//! the candidate store; a new label function also rebuilds the prepared
//! table).

use super::deps::{PairDepCsr, BYTES_PER_ENTRY, BYTES_PER_SLOT};
use super::edits::{
    net_side_delta, validate_side, DirtyNodes, EditError, GraphEdit, GraphSide, SideDelta,
};
use super::iterate::{
    effective_threads, init_score, initialize, pair_update, run_delta, run_replay, run_sweep_slots,
    run_to_convergence, ApproxState, Recorder,
};
use super::parallel::{run_parallel_replay, Runtime};
use super::shards::{auto_shard_count, forced_shards, run_sharded, ShardState};
use crate::candidates::{estimated_dep_entries, repair_candidates, StoreRepair, NO_SLOT};
use crate::config::{ConfigError, ConvergenceMode, FsimConfig, LabelTermMode, ShardSpec};
use crate::operators::{scalar_kernel_forced, LabelEval, OpCtx, OpScratch, Operator, VariantOp};
use crate::result::FsimResult;
use crate::snapshot::ScoreSnapshot;
use crate::store::PairStore;
use crate::topk::top_k_from_iter;
use fsim_graph::{Graph, LabelId, LabelInterner, NodeId};
use std::borrow::Cow;
use std::sync::Arc;

/// Label arrays of both graphs expressed in one shared interner.
///
/// When the graphs already share an interner (the recommended construction)
/// this is a cheap copy; otherwise both label vocabularies are merged.
pub(crate) struct AlignedLabels {
    pub(crate) labels1: Vec<LabelId>,
    pub(crate) labels2: Vec<LabelId>,
    pub(crate) interner: Arc<LabelInterner>,
}

impl AlignedLabels {
    pub(crate) fn new(g1: &Graph, g2: &Graph) -> Self {
        if Arc::ptr_eq(g1.interner(), g2.interner()) {
            return Self {
                labels1: g1.labels().to_vec(),
                labels2: g2.labels().to_vec(),
                interner: Arc::clone(g1.interner()),
            };
        }
        let merged = LabelInterner::shared();
        let remap = |g: &Graph| -> Vec<LabelId> {
            let table: Vec<LabelId> = g
                .interner()
                .all()
                .iter()
                .map(|s| merged.intern(s))
                .collect();
            g.labels().iter().map(|l| table[l.index()]).collect()
        };
        let labels1 = remap(g1);
        let labels2 = remap(g2);
        Self {
            labels1,
            labels2,
            interner: merged,
        }
    }
}

/// Resolves the label-term evaluation for the hot loop.
pub(crate) fn build_label_eval(cfg: &FsimConfig, interner: &LabelInterner) -> LabelEval {
    match &cfg.label_term {
        LabelTermMode::Sim => LabelEval::Sim(cfg.label_fn.prepare(interner)),
        LabelTermMode::Constant(c) => LabelEval::Constant(*c),
    }
}

/// Does changing `old → new` invalidate the prepared label evaluation?
fn label_eval_changed(old: &FsimConfig, new: &FsimConfig) -> bool {
    match (&old.label_term, &new.label_term) {
        (LabelTermMode::Sim, LabelTermMode::Sim) => !old.label_fn.same_as(&new.label_fn),
        (a, b) => a != b,
    }
}

/// Does changing `old → new` invalidate the candidate-pair store?
fn store_changed(old: &FsimConfig, new: &FsimConfig, label_changed: bool) -> bool {
    if old.theta != new.theta || old.upper_bound != new.upper_bound {
        return true;
    }
    // θ-filtering and upper-bound pruning read label similarities; the
    // default dense cross product does not.
    let store_reads_labels = new.theta > 0.0 || new.upper_bound.is_some();
    if label_changed && store_reads_labels {
        return true;
    }
    // The static upper bound (Eq. 6) additionally depends on the operator
    // shape and the weights.
    if new.upper_bound.is_some()
        && (old.variant != new.variant
            || old.matcher != new.matcher
            || old.w_out != new.w_out
            || old.w_in != new.w_in)
    {
        return true;
    }
    false
}

/// A reusable `FSimχ` session over one graph pair.
///
/// ```
/// use fsim_core::{FsimConfig, FsimEngine, Variant};
/// use fsim_graph::examples::figure1;
/// use fsim_labels::LabelFn;
///
/// let f = figure1();
/// let cfg = FsimConfig::new(Variant::Bijective).label_fn(LabelFn::Indicator);
/// let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
/// engine.run();
/// let strict = engine.score(f.u, f.v[3]);
/// // Re-run under simple simulation; alignment and candidates are reused.
/// engine.rerun(|c| c.variant = Variant::Simple).unwrap();
/// assert!(engine.score(f.u, f.v[0]) <= 1.0);
/// assert!(strict > 0.999);
/// ```
pub struct FsimEngine<'g, O: Operator = VariantOp> {
    /// The session's graphs. Borrowed until the first
    /// [`apply_edits`](Self::apply_edits) batch touches a side; edited
    /// sides become session-owned patched copies (clone-on-write).
    g1: Cow<'g, Graph>,
    g2: Cow<'g, Graph>,
    cfg: FsimConfig,
    op: O,
    labels1: Vec<LabelId>,
    labels2: Vec<LabelId>,
    interner: Arc<LabelInterner>,
    label_eval: LabelEval,
    store: PairStore,
    /// Per-slot cache of the (iteration-constant) label term
    /// `L(ℓ1(u), ℓ2(v))`; rebuilt with the store or the label evaluation.
    label_terms: Vec<f64>,
    /// The pair-dependency CSR for delta-driven convergence, built lazily
    /// on [`run`](Self::run) when the configured [`ConvergenceMode`]
    /// wants it. Lives exactly as long as the store it indexes. Mutually
    /// exclusive with `shards`.
    deps: Option<PairDepCsr>,
    /// Sharded-execution state (the u-row [`ShardSpec`] plan plus the
    /// boundary-exchange masks), held when the session executes sharded —
    /// per-shard CSRs are then built transiently per sweep and this full
    /// CSR cache stays empty. Invalidated with the store, like `deps`.
    shards: Option<ShardState>,
    scores: Vec<f64>,
    /// Reusable double buffer for the iteration loop.
    cur: Vec<f64>,
    /// The last run's full iterate trajectory (`iterates[0]` = `FSim⁰`),
    /// recorded when delta scheduling is active and the estimated size
    /// fits [`FsimConfig::trajectory_budget`]. Enables
    /// [`apply_edits`](Self::apply_edits) to *replay* the iteration after
    /// a graph edit instead of recomputing from scratch.
    trajectory: Option<Vec<Vec<f64>>>,
    /// The final per-slot accumulators of the last **approximate** run
    /// (`None` after exact runs). Carried into
    /// [`apply_edits`](Self::apply_edits) so approximate sessions can
    /// warm-restart from the converged scores instead of replaying — the
    /// accumulators remain valid residual bounds for every slot the edit
    /// did not touch.
    approx_acc: Option<Vec<f64>>,
    iterations: usize,
    converged: bool,
    final_delta: f64,
    /// Certified error bound of the last run (0 for exact modes).
    error_bound: f64,
    /// Pairs re-evaluated per iteration by the last run.
    pairs_evaluated: Vec<usize>,
    /// Wall-clock seconds per iteration of the last run, aligned with
    /// `pairs_evaluated` (their ratio is the pairs-per-second throughput
    /// metric).
    iter_seconds: Vec<f64>,
    /// Whether the last run used delta-driven scheduling.
    delta_scheduled: bool,
    /// Shards the last run executed with (0 = unsharded).
    shard_count: usize,
    /// Peak resident dependency-CSR bytes during the last run (the full
    /// CSR for unsharded delta and CSR-routed sweep runs, the largest
    /// single shard CSR for sharded runs, 0 for on-the-fly sweeps).
    peak_csr_bytes: usize,
    /// The session's persistent worker pool, spawned lazily at the first
    /// run whose workload warrants parallelism and reused by every
    /// subsequent run, rerun and edit replay. The configured thread count
    /// is a session property: changing `cfg.threads` replaces the pool.
    runtime: Option<Runtime>,
    has_run: bool,
}

/// The engine state `engine/persist.rs` serializes and restores —
/// every field is borrowed or moved through these two structs so the
/// snapshot codec never needs direct access to the (private) session
/// fields. See `docs/SNAPSHOT.md` for what is persisted vs re-derived.
pub(crate) struct PersistParts<'e> {
    pub(crate) g1: &'e Graph,
    pub(crate) g2: &'e Graph,
    pub(crate) cfg: &'e FsimConfig,
    pub(crate) interner: &'e Arc<LabelInterner>,
    pub(crate) labels1: &'e [LabelId],
    pub(crate) labels2: &'e [LabelId],
    pub(crate) store: &'e PairStore,
    pub(crate) label_terms: &'e [f64],
    pub(crate) label_table: Option<&'e [f64]>,
    pub(crate) deps: Option<&'e PairDepCsr>,
    pub(crate) scores: &'e [f64],
    pub(crate) trajectory: Option<&'e Vec<Vec<f64>>>,
    pub(crate) approx_acc: Option<&'e Vec<f64>>,
    pub(crate) iterations: usize,
    pub(crate) converged: bool,
    pub(crate) final_delta: f64,
    pub(crate) error_bound: f64,
    pub(crate) pairs_evaluated: &'e [usize],
    pub(crate) delta_scheduled: bool,
    pub(crate) shard_count: usize,
    pub(crate) has_run: bool,
}

/// The decoded state a snapshot restores into a fresh owned session.
pub(crate) struct RestoredParts {
    pub(crate) g1: Graph,
    pub(crate) g2: Graph,
    pub(crate) cfg: FsimConfig,
    pub(crate) interner: Arc<LabelInterner>,
    pub(crate) store: PairStore,
    pub(crate) label_terms: Vec<f64>,
    pub(crate) label_table: Option<Vec<f64>>,
    pub(crate) deps: Option<PairDepCsr>,
    pub(crate) scores: Vec<f64>,
    pub(crate) trajectory: Option<Vec<Vec<f64>>>,
    pub(crate) approx_acc: Option<Vec<f64>>,
    pub(crate) iterations: usize,
    pub(crate) converged: bool,
    pub(crate) final_delta: f64,
    pub(crate) error_bound: f64,
    pub(crate) pairs_evaluated: Vec<usize>,
    pub(crate) delta_scheduled: bool,
    pub(crate) shard_count: usize,
    pub(crate) has_run: bool,
}

/// Warm-start state for the approximate edit path: the pre-edit scores
/// and error accumulators remapped to the repaired store's slots (added
/// and structurally dirty slots carry `f64::INFINITY`, forcing their
/// evaluation).
struct WarmStart {
    scores: Vec<f64>,
    acc: Vec<f64>,
}

impl<'g> FsimEngine<'g, VariantOp> {
    /// Builds a session for the variant selected in `cfg`, precomputing
    /// label alignment, the prepared label evaluation and the candidate
    /// store. Call [`run`](Self::run) to iterate to convergence.
    pub fn new(g1: &'g Graph, g2: &'g Graph, cfg: &FsimConfig) -> Result<Self, ConfigError> {
        let op = VariantOp {
            variant: cfg.variant,
            matcher: cfg.matcher,
        };
        Self::with_operator(g1, g2, cfg, op)
    }

    /// Borrows everything the snapshot codec persists (the codec lives
    /// in `engine/persist.rs`; only built-in-operator sessions can be
    /// reconstructed from a config, so persistence is `VariantOp`-only).
    pub(crate) fn persist_parts(&self) -> PersistParts<'_> {
        PersistParts {
            g1: &self.g1,
            g2: &self.g2,
            cfg: &self.cfg,
            interner: &self.interner,
            labels1: &self.labels1,
            labels2: &self.labels2,
            store: &self.store,
            label_terms: &self.label_terms,
            label_table: match &self.label_eval {
                LabelEval::Sim(p) => p.table(),
                LabelEval::Constant(_) => None,
            },
            deps: self.deps.as_ref(),
            scores: &self.scores,
            trajectory: self.trajectory.as_ref(),
            approx_acc: self.approx_acc.as_ref(),
            iterations: self.iterations,
            converged: self.converged,
            final_delta: self.final_delta,
            error_bound: self.error_bound,
            pairs_evaluated: &self.pairs_evaluated,
            delta_scheduled: self.delta_scheduled,
            shard_count: self.shard_count,
            has_run: self.has_run,
        }
    }
}

impl FsimEngine<'static, VariantOp> {
    /// Builds a session that **owns** its graphs, so its lifetime is not
    /// tied to a caller's borrow — the handoff constructor for long-lived
    /// holders like the `fsimd` serving daemon, whose writer thread owns
    /// one engine per namespace and must outlive the scope that loaded
    /// the graphs.
    pub fn new_owned(g1: Graph, g2: Graph, cfg: &FsimConfig) -> Result<Self, ConfigError> {
        let op = VariantOp {
            variant: cfg.variant,
            matcher: cfg.matcher,
        };
        Self::from_cows(Cow::Owned(g1), Cow::Owned(g2), cfg, op)
    }

    /// Reassembles a session from decoded snapshot state. Everything
    /// not in [`RestoredParts`] is re-derived: the prepared label
    /// evaluation (from config + interner), the aligned label copies
    /// (the snapshot stores graphs already remapped to the merged
    /// interner), the double buffer, the worker pool (lazy), and any
    /// shard state (rebuilt deterministically by the next run).
    pub(crate) fn from_restored(parts: RestoredParts) -> FsimEngine<'static, VariantOp> {
        // A persisted prepared table (validated against the interner by
        // the codec) skips the O(|Σ|²) string-similarity rebuild — the
        // dominant cost of a cold start under non-trivial label
        // functions. Sessions without one re-derive as usual.
        let label_eval = match parts.label_table {
            Some(table) => LabelEval::Sim(fsim_labels::PreparedLabelSim::from_table(
                parts.interner.len(),
                table,
            )),
            None => build_label_eval(&parts.cfg, &parts.interner),
        };
        FsimEngine {
            op: VariantOp {
                variant: parts.cfg.variant,
                matcher: parts.cfg.matcher,
            },
            labels1: parts.g1.labels().to_vec(),
            labels2: parts.g2.labels().to_vec(),
            g1: Cow::Owned(parts.g1),
            g2: Cow::Owned(parts.g2),
            cfg: parts.cfg,
            interner: parts.interner,
            label_eval,
            store: parts.store,
            label_terms: parts.label_terms,
            deps: parts.deps,
            shards: None,
            scores: parts.scores,
            cur: Vec::new(),
            trajectory: parts.trajectory,
            approx_acc: parts.approx_acc,
            iterations: parts.iterations,
            converged: parts.converged,
            final_delta: parts.final_delta,
            error_bound: parts.error_bound,
            pairs_evaluated: parts.pairs_evaluated,
            iter_seconds: Vec::new(),
            delta_scheduled: parts.delta_scheduled,
            shard_count: parts.shard_count,
            peak_csr_bytes: 0,
            runtime: None,
            has_run: parts.has_run,
        }
    }
}

impl<'g, O: Operator> FsimEngine<'g, O> {
    /// Builds a session with a custom [`Operator`] — the "configure the
    /// framework" path of §4.
    pub fn with_operator(
        g1: &'g Graph,
        g2: &'g Graph,
        cfg: &FsimConfig,
        op: O,
    ) -> Result<Self, ConfigError> {
        Self::from_cows(Cow::Borrowed(g1), Cow::Borrowed(g2), cfg, op)
    }

    fn from_cows(
        g1: Cow<'g, Graph>,
        g2: Cow<'g, Graph>,
        cfg: &FsimConfig,
        op: O,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let aligned = AlignedLabels::new(&g1, &g2);
        let label_eval = build_label_eval(cfg, &aligned.interner);
        let mut engine = Self {
            g1,
            g2,
            cfg: cfg.clone(),
            op,
            labels1: aligned.labels1,
            labels2: aligned.labels2,
            interner: aligned.interner,
            label_eval,
            store: PairStore {
                pairs: Vec::new(),
                index: crate::store::PairIndex::Dense { n2: 0 },
                fallback: crate::store::Fallback::Zero,
            },
            label_terms: Vec::new(),
            deps: None,
            shards: None,
            scores: Vec::new(),
            cur: Vec::new(),
            trajectory: None,
            approx_acc: None,
            iterations: 0,
            converged: false,
            final_delta: 0.0,
            error_bound: 0.0,
            pairs_evaluated: Vec::new(),
            iter_seconds: Vec::new(),
            delta_scheduled: false,
            shard_count: 0,
            peak_csr_bytes: 0,
            runtime: None,
            has_run: false,
        };
        engine.rebuild_store();
        Ok(engine)
    }

    fn ctx(&self) -> OpCtx<'_> {
        OpCtx {
            labels1: &self.labels1,
            labels2: &self.labels2,
            label_eval: &self.label_eval,
            theta: self.cfg.theta,
        }
    }

    fn rebuild_store(&mut self) {
        // Upper-bound evaluation parallelizes over the pre-prune base set;
        // spin the session pool up front when that base can plausibly use
        // it (the pool then persists into the iteration drivers anyway).
        if self.cfg.upper_bound.is_some() && self.cfg.threads > 1 {
            let full = self.g1.node_count().saturating_mul(self.g2.node_count());
            if full >= 2 * 4096
                && self.runtime.as_ref().map(|r| r.threads()) != Some(self.cfg.threads)
            {
                self.runtime = Some(Runtime::new(self.cfg.threads));
            }
        }
        let store = crate::candidates::enumerate_candidates_with(
            &self.g1,
            &self.g2,
            &self.ctx(),
            &self.cfg,
            &self.op,
            self.runtime.as_ref(),
        );
        self.store = store;
        // The dependency CSR, the shard plan, the recorded trajectory and
        // the approximate accumulators all index the old store's slots;
        // drop them.
        self.deps = None;
        self.shards = None;
        self.trajectory = None;
        self.approx_acc = None;
        self.refresh_label_terms();
        self.has_run = false;
    }

    /// Recomputes the per-slot label-term cache (store or label evaluation
    /// changed).
    fn refresh_label_terms(&mut self) {
        let ctx = self.ctx();
        let terms: Vec<f64> = self
            .store
            .pairs
            .iter()
            .map(|&(u, v)| ctx.label_sim(u, v))
            .collect();
        self.label_terms = terms;
    }

    /// Decides the run's scheduling substrate from the configured
    /// [`ConvergenceMode`] × [`ShardSpec`]: the full dependency CSR
    /// (`deps`), the sharded plan (`shards`, mutually exclusive), or
    /// neither (on-the-fly full sweep).
    ///
    /// * An operator without a slot path holds neither.
    /// * `FullSweep` keeps sweep *scheduling* (every pair, every
    ///   iteration) but routes each evaluation through the CSR's
    ///   contiguous slot-indexed buffers when the estimate fits the
    ///   budget — the vectorized kernel path, bitwise identical to the
    ///   on-the-fly sweep. [`crate::force_scalar_kernel`] opts back into
    ///   the on-the-fly path (no CSR).
    /// * `ShardSpec::Fixed(k)` always shards (rebuilding the plan when
    ///   the requested `k` changes).
    /// * `DeltaDriven` / `Approximate` without a fixed shard count build
    ///   the full CSR unconditionally (the explicit opt-ins that ignore
    ///   the memory budget).
    /// * `Auto` convergence keeps an already-built CSR (it lives as long
    ///   as the store); otherwise it builds the CSR when the
    ///   degree-product estimate fits [`FsimConfig::csr_budget`],
    ///   **degrades to sharded execution** when it does not and the
    ///   shard spec is `Auto` (picking the smallest `K` whose per-shard
    ///   share fits; a cached same-`K` plan and its boundary masks are
    ///   reused), and falls back to the full sweep only under
    ///   `ShardSpec::Off`.
    fn ensure_scheduling(&mut self) {
        if !self.op.supports_slots() {
            self.deps = None;
            self.shards = None;
            return;
        }
        if self.cfg.convergence == ConvergenceMode::FullSweep {
            self.shards = None;
            if scalar_kernel_forced() {
                // Pre-vectorization strategy: on-the-fly evaluation, no
                // CSR (the A/B baseline of `tests/kernel_equivalence.rs`).
                self.deps = None;
            } else if self.deps.is_none() {
                let entries = estimated_dep_entries(&self.g1, &self.g2, &self.store);
                let bytes =
                    entries * BYTES_PER_ENTRY + (self.store.len() as u128 + 1) * BYTES_PER_SLOT;
                if bytes <= self.cfg.csr_budget as u128 {
                    let csr =
                        PairDepCsr::build(&self.g1, &self.g2, &self.ctx(), &self.store, &self.op);
                    self.deps = Some(csr);
                }
            }
            return;
        }
        if let Some(k) = forced_shards(&self.cfg) {
            self.deps = None;
            if self.shards.as_ref().map(|s| s.requested) != Some(k) {
                self.shards = Some(ShardState::new(
                    &self.g1,
                    &self.g2,
                    &self.store,
                    k,
                    self.cfg.spill_dir.as_deref(),
                ));
            }
            return;
        }
        match self.cfg.convergence {
            ConvergenceMode::DeltaDriven | ConvergenceMode::Approximate { .. } => {
                self.shards = None;
                if self.deps.is_none() {
                    let csr =
                        PairDepCsr::build(&self.g1, &self.g2, &self.ctx(), &self.store, &self.op);
                    self.deps = Some(csr);
                }
            }
            ConvergenceMode::Auto => {
                if self.deps.is_some() {
                    self.shards = None;
                    return;
                }
                // No CSR cached: re-derive the decision from the current
                // spec and estimate every run (an O(|H|) degree scan) —
                // a cached shard state must not outlive a rerun that
                // switched the spec to `Off` or shrank the workload back
                // under the budget. A still-valid auto-chosen plan (same
                // K) is kept, preserving its boundary masks.
                let entries = estimated_dep_entries(&self.g1, &self.g2, &self.store);
                let bytes =
                    entries * BYTES_PER_ENTRY + (self.store.len() as u128 + 1) * BYTES_PER_SLOT;
                if bytes <= self.cfg.csr_budget as u128 {
                    self.shards = None;
                    let csr =
                        PairDepCsr::build(&self.g1, &self.g2, &self.ctx(), &self.store, &self.op);
                    self.deps = Some(csr);
                } else if self.cfg.shards == ShardSpec::Auto {
                    let k = auto_shard_count(bytes, self.cfg.csr_budget);
                    if self.shards.as_ref().map(|s| s.requested) != Some(k) {
                        self.shards = Some(ShardState::new(
                            &self.g1,
                            &self.g2,
                            &self.store,
                            k,
                            self.cfg.spill_dir.as_deref(),
                        ));
                    }
                } else {
                    // ShardSpec::Off: neither — the run uses the full
                    // sweep.
                    self.shards = None;
                }
            }
            ConvergenceMode::FullSweep => unreachable!("handled above"),
        }
    }

    /// Whether a run should attempt to record its trajectory at all:
    /// recording is optimistic — the [`Recorder`] abandons mid-run on
    /// budget overrun — but a store where even two iterates blow the
    /// budget is not worth the copies. Approximate runs never record:
    /// their edit path warm-restarts from the carried accumulators, which
    /// is strictly cheaper than a per-iteration replay.
    fn should_record(&self) -> bool {
        let two_iterates = 2u128 * self.store.len() as u128 * 8;
        self.deps.is_some()
            // Sweep runs hold a CSR for the vectorized kernel but keep
            // the sweep's semantics — which never included recording.
            && self.cfg.convergence != ConvergenceMode::FullSweep
            && self.cfg.convergence.approximate_tolerance().is_none()
            && self.cfg.trajectory_budget > 0
            && two_iterates <= self.cfg.trajectory_budget as u128
    }

    /// Lazily spawns (or replaces) the session's persistent [`Runtime`]
    /// when the configured thread count and the current workload warrant
    /// parallel execution. An existing pool with the right worker count is
    /// kept — the whole point is that workers and their scratch state
    /// survive across runs. A pool is never torn down just because the
    /// workload shrank (a later rerun may grow it back); only a `threads`
    /// reconfiguration replaces it.
    fn ensure_runtime(&mut self) {
        if effective_threads(self.cfg.threads, self.store.len()) > 1
            && self.runtime.as_ref().map(|r| r.threads()) != Some(self.cfg.threads)
        {
            self.runtime = Some(Runtime::new(self.cfg.threads));
        }
    }

    /// The runtime to hand the iteration drivers for a worklist of
    /// (at most) `worklist` slots — `None` degrades to the sequential
    /// path when coordination overhead would dominate.
    fn active_runtime<'a>(
        runtime: &'a Option<Runtime>,
        cfg: &FsimConfig,
        worklist: usize,
    ) -> Option<&'a Runtime> {
        runtime
            .as_ref()
            .filter(|_| effective_threads(cfg.threads, worklist) > 1)
    }

    /// Iterates Equation 3 to convergence (Algorithm 1) from a fresh
    /// initialization, reusing every cached precomputation and the score
    /// buffers of previous runs.
    pub fn run(&mut self) -> &mut Self {
        if self.store.is_empty() {
            self.scores.clear();
            self.iterations = 0;
            self.converged = true;
            self.final_delta = 0.0;
            self.error_bound = 0.0;
            self.pairs_evaluated.clear();
            self.iter_seconds.clear();
            self.delta_scheduled = false;
            self.shard_count = 0;
            self.peak_csr_bytes = 0;
            self.trajectory = None;
            self.approx_acc = None;
            self.has_run = true;
            return self;
        }
        self.ensure_scheduling();
        // A sweep run holds a CSR purely as the vectorized kernel's
        // substrate — its scheduling is still the full sweep.
        self.delta_scheduled = (self.deps.is_some()
            && self.cfg.convergence != ConvergenceMode::FullSweep)
            || self.shards.is_some();
        self.ensure_runtime();
        let mut recorded: Option<Vec<Vec<f64>>> = self.should_record().then(Vec::new);
        // ε-aware approximate scheduling is active only when a slot-based
        // substrate is available (operators without a slot path fall back
        // to the exact full sweep, error bound 0).
        let mut approx_state = self
            .cfg
            .convergence
            .approximate_tolerance()
            .filter(|_| self.deps.is_some() || self.shards.is_some())
            .map(|tol| ApproxState::cold(self.store.len(), &self.cfg, tol));
        // Destructure so the iteration loop can borrow the caches
        // immutably while writing the score buffers.
        let Self {
            g1,
            g2,
            cfg,
            op,
            labels1,
            labels2,
            label_eval,
            store,
            label_terms,
            deps,
            shards,
            scores,
            cur,
            runtime,
            ..
        } = self;
        let (g1, g2): (&Graph, &Graph) = (g1, g2);
        initialize(store, cfg, g1, g2, label_terms, scores);
        let rt = Self::active_runtime(runtime, cfg, store.len());
        let mut shard_peak = 0usize;
        let outcome = if let Some(state) = shards.as_mut() {
            let ctx = OpCtx {
                labels1: labels1.as_slice(),
                labels2: labels2.as_slice(),
                label_eval,
                theta: cfg.theta,
            };
            let (outcome, peak) = run_sharded(
                g1,
                g2,
                &ctx,
                cfg,
                op,
                store,
                label_terms,
                state,
                scores,
                cur,
                None,
                approx_state.as_mut(),
                rt,
            );
            shard_peak = peak;
            outcome
        } else {
            match deps {
                Some(csr) if cfg.convergence == ConvergenceMode::FullSweep => {
                    run_sweep_slots(cfg, op, store, csr, label_terms, scores, cur, rt)
                }
                Some(csr) => {
                    let mut recorder = recorded
                        .as_mut()
                        .map(|h| Recorder::new(h, cfg.trajectory_budget));
                    run_delta(
                        cfg,
                        op,
                        store,
                        csr,
                        label_terms,
                        scores,
                        cur,
                        recorder.as_mut(),
                        None,
                        approx_state.as_mut(),
                        rt,
                    )
                }
                None => {
                    let ctx = OpCtx {
                        labels1: labels1.as_slice(),
                        labels2: labels2.as_slice(),
                        label_eval,
                        theta: cfg.theta,
                    };
                    run_to_convergence(g1, g2, &ctx, cfg, op, store, label_terms, scores, cur, rt)
                }
            }
        };
        self.shard_count = self.shards.as_ref().map_or(0, |s| s.plan.k());
        self.peak_csr_bytes = if self.shards.is_some() {
            shard_peak
        } else {
            self.deps.as_ref().map_or(0, |d| d.bytes())
        };
        // An abandoned (over-budget) recording comes back empty.
        self.trajectory = recorded.filter(|h| h.len() >= 2);
        match approx_state {
            Some(state) => {
                self.error_bound = state.error_bound(&self.cfg);
                self.approx_acc = Some(state.acc);
            }
            None => {
                self.error_bound = 0.0;
                self.approx_acc = None;
            }
        }
        self.iterations = outcome.iterations;
        self.converged = outcome.converged;
        self.final_delta = outcome.final_delta;
        self.pairs_evaluated = outcome.pairs_evaluated;
        self.iter_seconds = outcome.iter_seconds;
        self.has_run = true;
        self
    }

    /// Reconfigures the session and re-runs it, reusing every cached
    /// precomputation the change does not invalidate. Returns a
    /// [`ConfigError`] (leaving the session untouched) if the modified
    /// configuration is invalid.
    ///
    /// Scores after `rerun` are bitwise identical to a fresh one-shot
    /// [`compute`](crate::engine::compute) under the same configuration.
    pub fn rerun(
        &mut self,
        modify: impl FnOnce(&mut FsimConfig),
    ) -> Result<&mut Self, ConfigError> {
        let mut new_cfg = self.cfg.clone();
        modify(&mut new_cfg);
        new_cfg.validate()?;
        let label_changed = label_eval_changed(&self.cfg, &new_cfg);
        let store_stale = store_changed(&self.cfg, &new_cfg, label_changed);
        self.cfg = new_cfg;
        self.op.sync_cfg(&self.cfg);
        // A config change can alter the dependency entry lists (θ
        // eligibility, label constants, operator folding) under an
        // unchanged shard plan — spilled shard CSRs are stale.
        if let Some(state) = self.shards.as_mut() {
            state.clear_spill();
        }
        if label_changed {
            self.label_eval = build_label_eval(&self.cfg, &self.interner);
        }
        if store_stale {
            // Also drops the dependency CSR and refreshes the label-term
            // cache — both live exactly as long as the store.
            self.rebuild_store();
        } else if label_changed {
            // Store survives a label change only when nothing θ- or
            // pruning-related reads labels; eligibility is then vacuous
            // (θ = 0), so the CSR stays valid — but the cached label
            // terms do not.
            self.refresh_label_terms();
        }
        Ok(self.run())
    }

    /// Applies a batch of [`GraphEdit`]s to the session's graphs and
    /// re-converges, returning the updated scores.
    ///
    /// The whole write path is incremental: the adjacency CSRs are
    /// patched in place of a rebuild, candidate membership is
    /// re-enumerated only for the edit's dirty rows, the pair-dependency
    /// CSR re-derives entries only for the affected slots, and the
    /// convergence loop **replays** the previous run's recorded iterate
    /// trajectory — re-evaluating only the slots the edit can reach
    /// through the reverse dependency CSR. The result is **bitwise
    /// identical** to tearing the session down and recomputing from
    /// scratch on the edited graphs (`tests/incremental_edits.rs`
    /// property-checks this across variants × θ × pruning × threads),
    /// while warm single-edge edits re-evaluate a small fraction of the
    /// pairs (the `incremental` bench records the ratio in
    /// `BENCH_incremental.json`).
    ///
    /// Without a recorded trajectory (full-sweep scheduling, an operator
    /// with no slot path, or a trajectory over
    /// [`FsimConfig::trajectory_budget`]) the structures are still
    /// repaired incrementally, but the iteration restarts cold.
    ///
    /// On error the session is left untouched. An all-no-op batch (edits
    /// that cancel or already hold) returns the current scores.
    ///
    /// ```
    /// use fsim_core::{compute, FsimConfig, FsimEngine, GraphEdit, GraphSide, Variant};
    /// use fsim_graph::graph_from_parts;
    /// use fsim_labels::LabelFn;
    ///
    /// let g1 = graph_from_parts(&["a", "b"], &[(0, 1)]);
    /// let g2 = graph_from_parts(&["a", "b", "b"], &[(0, 1)]);
    /// let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
    /// let mut engine = FsimEngine::new(&g1, &g2, &cfg).unwrap();
    /// engine.run();
    ///
    /// let warm = engine
    ///     .apply_edits(&[GraphEdit::add_edge(GraphSide::Right, 0, 2)])
    ///     .unwrap();
    /// // Bitwise identical to a cold computation on the edited graph.
    /// let g2_edited = g2.with_edits(&[(0, 2)], &[], &[]);
    /// let cold = compute(&g1, &g2_edited, &cfg).unwrap();
    /// for (a, b) in warm.iter_pairs().zip(cold.iter_pairs()) {
    ///     assert_eq!(a, b);
    /// }
    /// ```
    pub fn apply_edits(&mut self, edits: &[GraphEdit]) -> Result<FsimResult, EditError> {
        // Validate the whole batch for both sides before touching any
        // state — including the shared label interner, which `net`
        // grows for unseen relabel targets.
        validate_side(&self.g1, GraphSide::Left, edits)?;
        validate_side(&self.g2, GraphSide::Right, edits)?;
        let d1 = net_side_delta(&self.g1, GraphSide::Left, edits);
        let d2 = net_side_delta(&self.g2, GraphSide::Right, edits);
        if d1.is_empty() && d2.is_empty() {
            if !self.has_run {
                self.run();
            }
            return Ok(self.snapshot());
        }

        // Patch the graphs (CSR splice, not a rebuild) and derive the
        // node-level dirty sets from old + new adjacency.
        let apply_side = |g: &Graph, d: &SideDelta| -> Option<Graph> {
            (!d.is_empty()).then(|| g.with_edits(&d.adds, &d.removes, &d.relabels))
        };
        let g1_new = apply_side(&self.g1, &d1);
        let g2_new = apply_side(&self.g2, &d2);
        let dirty1 = DirtyNodes::of(
            &d1,
            &self.g1,
            g1_new.as_ref().unwrap_or(&self.g1),
            &self.cfg,
        );
        let dirty2 = DirtyNodes::of(
            &d2,
            &self.g2,
            g2_new.as_ref().unwrap_or(&self.g2),
            &self.cfg,
        );

        // Pre-edit adjacency of the edge endpoints (the only nodes whose
        // neighbor lists change) — needed to find the dependents of pairs
        // that leave the maintained set.
        let snapshot = |g: &Graph,
                        d: &SideDelta|
         -> fsim_graph::FxHashMap<NodeId, (Vec<NodeId>, Vec<NodeId>)> {
            let mut snap = fsim_graph::FxHashMap::default();
            for &(a, b) in d.adds.iter().chain(&d.removes) {
                for node in [a, b] {
                    snap.entry(node).or_insert_with(|| {
                        (
                            g.out_neighbors(node).to_vec(),
                            g.in_neighbors(node).to_vec(),
                        )
                    });
                }
            }
            snap
        };
        let snap1 = snapshot(&self.g1, &d1);
        let snap2 = snapshot(&self.g2, &d2);

        // Update the aligned label arrays (and the prepared label table if
        // the vocabulary grew).
        for (d, labels, graph) in [
            (&d1, &mut self.labels1, &self.g1),
            (&d2, &mut self.labels2, &self.g2),
        ] {
            for &(w, gid) in &d.relabels {
                let eid = if Arc::ptr_eq(&self.interner, graph.interner()) {
                    gid
                } else {
                    self.interner.intern(&graph.interner().resolve(gid))
                };
                labels[w as usize] = eid;
            }
        }
        if let LabelEval::Sim(prepared) = &self.label_eval {
            if self.interner.len() > prepared.label_count() {
                self.label_eval = build_label_eval(&self.cfg, &self.interner);
            }
        }
        if let Some(g) = g1_new {
            self.g1 = Cow::Owned(g);
        }
        if let Some(g) = g2_new {
            self.g2 = Cow::Owned(g);
        }

        // Repair the candidate store for the dirty rows only.
        let old_store = std::mem::replace(
            &mut self.store,
            PairStore {
                pairs: Vec::new(),
                index: crate::store::PairIndex::Dense { n2: 0 },
                fallback: crate::store::Fallback::Zero,
            },
        );
        let ctx = OpCtx {
            labels1: &self.labels1,
            labels2: &self.labels2,
            label_eval: &self.label_eval,
            theta: self.cfg.theta,
        };
        let repair: StoreRepair = repair_candidates(
            &self.g1,
            &self.g2,
            &ctx,
            &self.cfg,
            &self.op,
            old_store,
            &dirty1.membership,
            &dirty2.membership,
        );
        let n_new = repair.store.len();

        // Entry-dirty slots: pairs whose dependency lists must be
        // re-derived — structurally dirty rows, pairs entering the store,
        // and the dependents of every membership change.
        let mut entry_dirty = vec![false; n_new];
        let mut any_entry_dirty = false;
        {
            let pairs = &repair.store.pairs;
            for &u in &dirty1.structural {
                let lo = pairs.partition_point(|&(x, _)| x < u);
                let hi = pairs.partition_point(|&(x, _)| x <= u);
                for flag in &mut entry_dirty[lo..hi] {
                    *flag = true;
                    any_entry_dirty = true;
                }
            }
            if !dirty2.structural.is_empty() {
                for (slot, &(_, v)) in pairs.iter().enumerate() {
                    if dirty2.structural.contains(&v) {
                        entry_dirty[slot] = true;
                        any_entry_dirty = true;
                    }
                }
            }
            for (slot, &old) in repair.new_to_old.iter().enumerate() {
                if old == NO_SLOT {
                    entry_dirty[slot] = true;
                    any_entry_dirty = true;
                }
            }
            // Dependents of pairs that entered or left the store: slots
            // reading (u, v) as a neighbor pair live on the (pre- or
            // post-edit) in/out neighborhoods of u and v.
            let mut mark = |a: NodeId, b: NodeId| {
                if let Some(s) = repair.store.index.get(a, b) {
                    if s < n_new {
                        entry_dirty[s] = true;
                        any_entry_dirty = true;
                    }
                }
            };
            let hood = |g: &Graph,
                        snap: &fsim_graph::FxHashMap<NodeId, (Vec<NodeId>, Vec<NodeId>)>,
                        node: NodeId,
                        out: bool|
             -> Vec<NodeId> {
                let mut ns: Vec<NodeId> = if out {
                    g.out_neighbors(node).to_vec()
                } else {
                    g.in_neighbors(node).to_vec()
                };
                if let Some((o, i)) = snap.get(&node) {
                    ns.extend_from_slice(if out { o } else { i });
                    ns.sort_unstable();
                    ns.dedup();
                }
                ns
            };
            for &(u, v) in repair.removed_pairs.iter().chain(&repair.added_pairs) {
                for out in [false, true] {
                    // `out == false`: dependents via their out-neighbor
                    // term (they are in-neighbors of u/v); `out == true`:
                    // via their in-neighbor term.
                    for &a in &hood(&self.g1, &snap1, u, out) {
                        for &b in &hood(&self.g2, &snap2, v, out) {
                            mark(a, b);
                        }
                    }
                }
            }
        }

        // Repair the dependency CSR and the cached label terms, and
        // collect the always-dirty seed (entry-dirty ∪ relabeled rows)
        // for the replay.
        let mut label_terms = Vec::with_capacity(n_new);
        let mut always_dirty: Vec<u32> = Vec::new();
        for (slot, &(u, v)) in repair.store.pairs.iter().enumerate() {
            let old = repair.new_to_old[slot];
            let label_dirty = dirty1.relabeled.contains(&u) || dirty2.relabeled.contains(&v);
            if old != NO_SLOT && !label_dirty {
                label_terms.push(self.label_terms[old as usize]);
            } else {
                label_terms.push(ctx.label_sim(u, v));
            }
            if entry_dirty[slot] || label_dirty {
                always_dirty.push(slot as u32);
            }
        }
        let deps = self.deps.take().map(|old_deps| {
            if repair.membership_unchanged() && !any_entry_dirty {
                old_deps
            } else {
                old_deps.repaired(
                    &self.g1,
                    &self.g2,
                    &ctx,
                    &repair.store,
                    &self.op,
                    &repair.old_to_new,
                    &repair.new_to_old,
                    &entry_dirty,
                )
            }
        });

        // Carry the recorded trajectory into the new slot numbering
        // (added slots are always-dirty, so their filler is never read).
        let trajectory = self.trajectory.take().map(|traj| {
            if repair.membership_unchanged() {
                traj
            } else {
                traj.into_iter()
                    .map(|iterate| {
                        repair
                            .new_to_old
                            .iter()
                            .map(|&old| {
                                if old == NO_SLOT {
                                    0.0
                                } else {
                                    iterate[old as usize]
                                }
                            })
                            .collect()
                    })
                    .collect()
            }
        });

        // Approximate sessions warm-restart instead of replaying: remap
        // the converged scores and the carried error accumulators to the
        // repaired store's slots. Slots the edit touched — and pairs that
        // just entered the store — get `∞` accumulators, forcing their
        // re-evaluation; every other slot stays certified by its carried
        // bound (its update function and dependencies survived the edit).
        // A previous *exact* converged run carries `final_delta` for every
        // slot (a valid residual bound at its termination); without
        // either, the approximate run restarts cold.
        let warm = if self.cfg.convergence.approximate_tolerance().is_some()
            && self.has_run
            && self.scores.len() == repair.old_to_new.len()
        {
            let carried = match self.approx_acc.take() {
                Some(acc) => Some(acc),
                None if self.converged => Some(vec![self.final_delta.max(0.0); self.scores.len()]),
                None => None,
            };
            carried.map(|old_acc| {
                let mut scores = Vec::with_capacity(n_new);
                let mut acc = Vec::with_capacity(n_new);
                for (slot, &(u, v)) in repair.store.pairs.iter().enumerate() {
                    let old = repair.new_to_old[slot];
                    if old != NO_SLOT {
                        scores.push(self.scores[old as usize]);
                        acc.push(old_acc[old as usize]);
                    } else {
                        scores.push(init_score(
                            &self.cfg,
                            &self.g1,
                            &self.g2,
                            u,
                            v,
                            label_terms[slot],
                        ));
                        acc.push(f64::INFINITY);
                    }
                }
                for &s in &always_dirty {
                    acc[s as usize] = f64::INFINITY;
                }
                WarmStart { scores, acc }
            })
        } else {
            self.approx_acc = None;
            None
        };

        // Sharded sessions: the plan's u-row ranges are keyed by the
        // store's slot numbering and the boundary masks by its dependency
        // lists. A membership change renumbers slots — drop the state and
        // let the next run's scheduling decision rebuild it (the plan is
        // an O(|H|) degree scan, nothing like a CSR build). Otherwise the
        // plan survives; if any dependency entries were re-derived the
        // masks are reset — a missing reader bit would silently skip a
        // dirty shard — and the next run's first sweep rebuilds them
        // while it visits the dirty shards anyway.
        if self.shards.is_some() && !repair.membership_unchanged() {
            self.shards = None;
        } else if any_entry_dirty {
            if let Some(state) = self.shards.as_mut() {
                state.invalidate_entries();
            }
        }
        self.store = repair.store;
        self.label_terms = label_terms;
        self.deps = deps;
        self.trajectory = trajectory;
        // Re-check the CSR budget against the edited store for the
        // budget-gated modes (`Auto`, and `FullSweep`'s vectorized-kernel
        // CSR): a session that keeps densifying its graphs would
        // otherwise grow the carried CSR past the configured cap.
        // (`DeltaDriven` is an explicit opt-out of the budget, matching
        // `ensure_scheduling`.)
        if self.deps.is_some()
            && matches!(
                self.cfg.convergence,
                ConvergenceMode::Auto | ConvergenceMode::FullSweep
            )
        {
            let entries = estimated_dep_entries(&self.g1, &self.g2, &self.store);
            let bytes = entries * BYTES_PER_ENTRY + (self.store.len() as u128 + 1) * BYTES_PER_SLOT;
            if bytes > self.cfg.csr_budget as u128 {
                // Next run's scheduling decision degrades to sharded
                // delta (or, under ShardSpec::Off, to the full sweep).
                self.deps = None;
            }
        }
        self.has_run = false;
        self.run_after_edits(always_dirty, warm);
        Ok(self.snapshot())
    }

    /// Re-converges after [`apply_edits`](Self::apply_edits): under
    /// approximate scheduling it **warm-restarts** from the carried
    /// scores and accumulators (evaluating only slots whose certified
    /// residual exceeds the skip threshold — this is what breaks the
    /// bitwise replay's influence-ball floor); under the exact modes it
    /// replays the recorded trajectory when one is available. Falls back
    /// to a cold run otherwise.
    fn run_after_edits(&mut self, always_dirty: Vec<u32>, warm: Option<WarmStart>) {
        if self.store.is_empty() {
            self.run();
            return;
        }
        self.ensure_scheduling();
        self.ensure_runtime();
        if let Some(tol) = self.cfg.convergence.approximate_tolerance() {
            let has_substrate = self.deps.is_some() || self.shards.is_some();
            let (
                true,
                Some(WarmStart {
                    scores: warm_scores,
                    acc,
                }),
            ) = (has_substrate, warm)
            else {
                // No CSR or shard plan (operator without a slot path) or
                // no carried state: cold approximate run.
                self.run();
                return;
            };
            let mut state = ApproxState::warm(acc, &self.cfg, tol);
            // Initial worklist: every slot whose residual bound exceeds
            // the threshold — the ∞-seeded edit frontier plus carried
            // accumulators an earlier run left just under its limit.
            let worklist: Vec<u32> = state
                .acc
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a > state.threshold)
                .map(|(s, _)| s as u32)
                .collect();
            self.scores = warm_scores;
            self.delta_scheduled = true;
            self.trajectory = None;
            let mut shard_peak = 0usize;
            let outcome = {
                let Self {
                    g1,
                    g2,
                    cfg,
                    op,
                    labels1,
                    labels2,
                    label_eval,
                    store,
                    label_terms,
                    deps,
                    shards,
                    scores,
                    cur,
                    runtime,
                    ..
                } = self;
                let rt = Self::active_runtime(runtime, cfg, store.len());
                if let Some(shard_state) = shards.as_mut() {
                    let ctx = OpCtx {
                        labels1: labels1.as_slice(),
                        labels2: labels2.as_slice(),
                        label_eval,
                        theta: cfg.theta,
                    };
                    let (outcome, peak) = run_sharded(
                        g1,
                        g2,
                        &ctx,
                        cfg,
                        op,
                        store,
                        label_terms,
                        shard_state,
                        scores,
                        cur,
                        Some(&worklist),
                        Some(&mut state),
                        rt,
                    );
                    shard_peak = peak;
                    outcome
                } else {
                    let csr = deps.as_ref().expect("substrate checked above");
                    run_delta(
                        cfg,
                        op,
                        store,
                        csr,
                        label_terms,
                        scores,
                        cur,
                        None,
                        Some(worklist),
                        Some(&mut state),
                        rt,
                    )
                }
            };
            self.shard_count = self.shards.as_ref().map_or(0, |s| s.plan.k());
            self.peak_csr_bytes = if self.shards.is_some() {
                shard_peak
            } else {
                self.deps.as_ref().map_or(0, |d| d.bytes())
            };
            self.error_bound = state.error_bound(&self.cfg);
            self.approx_acc = Some(state.acc);
            self.iterations = outcome.iterations;
            self.converged = outcome.converged;
            self.final_delta = outcome.final_delta;
            self.pairs_evaluated = outcome.pairs_evaluated;
            self.iter_seconds = outcome.iter_seconds;
            self.has_run = true;
            return;
        }
        let old_traj = match (&self.deps, self.trajectory.take()) {
            (Some(_), Some(t)) if t.len() >= 2 && t[0].len() == self.store.len() => t,
            _ => {
                self.run();
                return;
            }
        };
        self.delta_scheduled = true;
        let mut recorded: Option<Vec<Vec<f64>>> = self.should_record().then(Vec::new);
        let outcome = {
            let Self {
                g1,
                g2,
                cfg,
                op,
                store,
                label_terms,
                deps,
                scores,
                cur,
                runtime,
                ..
            } = self;
            let (g1, g2): (&Graph, &Graph) = (g1, g2);
            let csr = deps.as_ref().expect("checked above");
            let (cfg, op): (&FsimConfig, &O) = (cfg, op);
            let (store, label_terms): (&PairStore, &[f64]) = (store, label_terms);
            initialize(store, cfg, g1, g2, label_terms, scores);
            let mut recorder = recorded
                .as_mut()
                .map(|h| Recorder::new(h, cfg.trajectory_budget));
            let n = store.len();
            if let Some(rt) = Self::active_runtime(runtime, cfg, n) {
                cur.clear();
                cur.resize(n, 0.0);
                run_parallel_replay(
                    rt,
                    cfg.effective_max_iters(),
                    cfg.epsilon,
                    &old_traj,
                    &always_dirty,
                    csr.rdep_offsets(),
                    csr.rdeps(),
                    scores,
                    cur,
                    recorder.as_mut(),
                    |slot: usize, prev: &[f64], scratch: &mut OpScratch| {
                        csr.eval_slot(cfg, op, store, slot, prev, scratch, label_terms[slot])
                    },
                )
            } else {
                run_replay(
                    cfg,
                    op,
                    store,
                    csr,
                    label_terms,
                    &old_traj,
                    &always_dirty,
                    scores,
                    cur,
                    recorder.as_mut(),
                )
            }
        };
        // An abandoned (over-budget) recording comes back empty.
        self.trajectory = recorded.filter(|h| h.len() >= 2);
        // Trajectory replay is an exact (bitwise) schedule over the full
        // CSR (sharded sessions never record, so they never get here).
        self.shard_count = 0;
        self.peak_csr_bytes = self.deps.as_ref().map_or(0, |d| d.bytes());
        self.error_bound = 0.0;
        self.approx_acc = None;
        self.iterations = outcome.iterations;
        self.converged = outcome.converged;
        self.final_delta = outcome.final_delta;
        self.pairs_evaluated = outcome.pairs_evaluated;
        self.iter_seconds = outcome.iter_seconds;
        self.has_run = true;
    }

    /// Score of a maintained pair, or `None` if `(u, v)` was pruned.
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.assert_run();
        self.store
            .index
            .get(u, v)
            .and_then(|i| self.scores.get(i).copied())
    }

    /// Score of *any* pair: maintained pairs read their converged value;
    /// pruned pairs are evaluated on demand with one Equation-3 step
    /// against the converged scores (their fixpoint value — see
    /// [`score_on_demand`](crate::engine::score_on_demand)), reusing the
    /// session's cached label alignment.
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run), or if `u` /
    /// `v` is not a node of its graph.
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        if let Some(s) = self.get(u, v) {
            return s;
        }
        let ctx = self.ctx();
        let view = self.store.view(&self.scores);
        let mut scratch = OpScratch::new();
        pair_update(
            &self.g1,
            &self.g2,
            &ctx,
            &self.cfg,
            &self.op,
            u,
            v,
            &view,
            &mut scratch,
        )
    }

    /// The `k` best-scoring maintained pairs, descending by score (ties
    /// broken by `(u, v)`). `exclude_identity` drops `(u, u)` pairs.
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn top_k(&self, k: usize, exclude_identity: bool) -> Vec<(NodeId, NodeId, f64)> {
        self.assert_run();
        top_k_from_iter(self.iter_pairs(), k, exclude_identity)
    }

    /// Iterates `(u, v, score)` over maintained pairs in slot order.
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn iter_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + Clone + '_ {
        self.assert_run();
        self.store
            .pairs
            .iter()
            .zip(&self.scores)
            .map(|(&(u, v), &s)| (u, v, s))
    }

    /// For each left node `u`, all `v` within `tie_eps` of the row maximum
    /// (see [`FsimResult::argmax_rows`]).
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn argmax_rows(&self, n_left: usize, tie_eps: f64) -> Vec<Vec<NodeId>> {
        crate::result::argmax_rows_from_iter(self.iter_pairs(), n_left, tie_eps)
    }

    /// Number of maintained pairs (`|H|`).
    pub fn pair_count(&self) -> usize {
        self.store.len()
    }

    /// Iterations executed by the last run (0 before any run).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the last run reached `Δ < ε` before the iteration cap.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The last run's final `Δ`.
    pub fn final_delta(&self) -> f64 {
        self.final_delta
    }

    /// Certified per-score error bound of the last run: `0` for the
    /// bitwise-exact convergence modes; under
    /// [`ConvergenceMode::Approximate`] the bound on the sup-norm
    /// distance to an exact run of the same configuration (see
    /// [`FsimResult::error_bound`]).
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// Pairs re-evaluated per iteration by the last run: `|H|` every
    /// iteration under the full sweep, the dirty-worklist length under
    /// delta-driven scheduling (empty before any run).
    pub fn pairs_evaluated(&self) -> &[usize] {
        &self.pairs_evaluated
    }

    /// Wall-clock seconds per iteration of the last run, aligned with
    /// [`pairs_evaluated`](Self::pairs_evaluated) (empty before any run).
    pub fn iteration_seconds(&self) -> &[f64] {
        &self.iter_seconds
    }

    /// Aggregate evaluation throughput of the last run in **pairs per
    /// second** — total pairs evaluated divided by total in-loop
    /// wall-clock time, `None` before any run or when the run was too
    /// fast for the clock to resolve.
    pub fn pairs_per_second(&self) -> Option<f64> {
        let secs: f64 = self.iter_seconds.iter().sum();
        let pairs: usize = self.pairs_evaluated.iter().sum();
        (secs > 0.0 && pairs > 0).then(|| pairs as f64 / secs)
    }

    /// Whether the last run used delta-driven (dirty-pair) scheduling.
    pub fn delta_scheduled(&self) -> bool {
        self.delta_scheduled
    }

    /// Number of entries in the cached pair-dependency CSR, or `None`
    /// when no full CSR is held (an over-budget estimate, sharded
    /// execution — whose per-shard CSRs are transient — an operator
    /// without a slot path, or a full sweep forced onto the on-the-fly
    /// scalar path via [`crate::force_scalar_kernel`]).
    pub fn dep_entry_count(&self) -> Option<usize> {
        self.deps.as_ref().map(|d| d.entry_count())
    }

    /// Number of u-row shards the last run executed with, `0` when it ran
    /// unsharded (see [`ShardSpec`]).
    ///
    /// ```
    /// use fsim_core::{FsimConfig, FsimEngine, ShardSpec, Variant};
    /// use fsim_graph::graph_from_parts;
    ///
    /// let g = graph_from_parts(&["a", "b", "a"], &[(0, 1), (1, 2)]);
    /// let cfg = FsimConfig::new(Variant::Simple).shards(ShardSpec::Fixed(2));
    /// let mut engine = FsimEngine::new(&g, &g, &cfg).unwrap();
    /// engine.run();
    /// assert_eq!(engine.shard_count(), 2);
    /// assert!(engine.peak_csr_bytes() > 0);
    /// ```
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Peak resident bytes of dependency-CSR structures during the last
    /// run: the full CSR's footprint for unsharded delta/approximate
    /// runs and CSR-routed full sweeps, the **largest single shard CSR**
    /// built during a sharded run (only one is ever resident at a time),
    /// `0` for on-the-fly sweeps. This is the quantity the `sharding`
    /// bench records to `BENCH_sharding.json`.
    pub fn peak_csr_bytes(&self) -> usize {
        self.peak_csr_bytes
    }

    /// Whether [`run`](Self::run) has produced scores for the current
    /// configuration.
    pub fn has_run(&self) -> bool {
        self.has_run
    }

    /// The active configuration.
    pub fn config(&self) -> &FsimConfig {
        &self.cfg
    }

    /// The session's graphs, `(G1, G2)` — the *edited* versions once
    /// [`apply_edits`](Self::apply_edits) has been used.
    pub fn graphs(&self) -> (&Graph, &Graph) {
        (&self.g1, &self.g2)
    }

    /// Whether the engine currently holds a recorded iterate trajectory —
    /// the prerequisite for [`apply_edits`](Self::apply_edits) to replay
    /// incrementally instead of recomputing cold (see
    /// [`FsimConfig::trajectory_budget`]).
    pub fn can_replay_edits(&self) -> bool {
        self.deps.is_some() && self.trajectory.as_ref().is_some_and(|t| t.len() >= 2)
    }

    /// An owned [`FsimResult`] snapshot of the current scores (clones the
    /// candidate store; prefer the accessors above inside loops).
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn snapshot(&self) -> FsimResult {
        self.assert_run();
        FsimResult::new(
            self.store.clone(),
            self.scores.clone(),
            self.iterations,
            self.converged,
            self.final_delta,
            self.pairs_evaluated.clone(),
            self.iter_seconds.clone(),
            self.error_bound,
        )
    }

    /// An `Arc`-shared [`ScoreSnapshot`] of the current scores — the
    /// epoch a serving layer publishes. One `O(|H|)` copy of the store
    /// and score buffer; the per-iteration diagnostics and any recorded
    /// replay trajectory stay behind in the session, so the snapshot's
    /// footprint is independent of the run length (see the regression
    /// test in `snapshot.rs`). Cloning the returned snapshot is `O(1)`.
    ///
    /// # Panics
    /// Panics if the session has not been [`run`](Self::run).
    pub fn snapshot_shared(&self) -> ScoreSnapshot {
        self.assert_run();
        ScoreSnapshot::from_parts(
            Arc::new(self.store.clone()),
            self.scores.as_slice().into(),
            self.iterations,
            self.converged,
            self.final_delta,
            self.error_bound,
        )
    }

    /// Consumes the session into an [`FsimResult`] without copying the
    /// store or scores. Runs first if the session has pending
    /// (re)configuration.
    pub fn into_result(mut self) -> FsimResult {
        if !self.has_run {
            self.run();
        }
        FsimResult::new(
            self.store,
            self.scores,
            self.iterations,
            self.converged,
            self.final_delta,
            self.pairs_evaluated,
            self.iter_seconds,
            self.error_bound,
        )
    }

    fn assert_run(&self) {
        assert!(
            self.has_run,
            "FsimEngine: call run() (or rerun()) before reading scores"
        );
    }
}

impl<O: Operator> std::fmt::Debug for FsimEngine<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsimEngine")
            .field("n1", &self.g1.node_count())
            .field("n2", &self.g2.node_count())
            .field("pairs", &self.store.len())
            .field("has_run", &self.has_run)
            .field("iterations", &self.iterations)
            .field("converged", &self.converged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::engine::compute;
    use fsim_graph::examples::figure1;
    use fsim_labels::LabelFn;

    fn cfg(variant: Variant) -> FsimConfig {
        FsimConfig::new(variant).label_fn(LabelFn::Indicator)
    }

    fn assert_same_scores(engine: &FsimEngine<'_>, fresh: &FsimResult) {
        assert_eq!(engine.pair_count(), fresh.pair_count());
        for ((u1, v1, s1), (u2, v2, s2)) in engine.iter_pairs().zip(fresh.iter_pairs()) {
            assert_eq!((u1, v1), (u2, v2));
            assert_eq!(s1.to_bits(), s2.to_bits(), "diverged at ({u1},{v1})");
        }
    }

    #[test]
    fn session_matches_one_shot_compute() {
        let f = figure1();
        for variant in Variant::ALL {
            let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(variant)).unwrap();
            engine.run();
            let fresh = compute(&f.pattern, &f.data, &cfg(variant)).unwrap();
            assert_same_scores(&engine, &fresh);
            assert_eq!(engine.iterations(), fresh.iterations);
            assert_eq!(engine.converged(), fresh.converged);
        }
    }

    #[test]
    fn rerun_theta_matches_fresh_compute() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        for theta in [0.3, 1.0, 0.0] {
            engine.rerun(|c| c.theta = theta).unwrap();
            let fresh = compute(&f.pattern, &f.data, &cfg(Variant::Simple).theta(theta)).unwrap();
            assert_same_scores(&engine, &fresh);
        }
    }

    #[test]
    fn rerun_variant_matches_fresh_compute() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        for variant in [Variant::Bijective, Variant::Bi, Variant::DegreePreserving] {
            engine.rerun(|c| c.variant = variant).unwrap();
            let fresh = compute(&f.pattern, &f.data, &cfg(variant)).unwrap();
            assert_same_scores(&engine, &fresh);
        }
    }

    #[test]
    fn rerun_epsilon_reiterates_without_store_rebuild() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        engine.run();
        let coarse_iters = engine.iterations();
        engine.rerun(|c| c.epsilon = 1e-6).unwrap();
        assert!(
            engine.iterations() > coarse_iters,
            "tighter ε must iterate further"
        );
        let mut strict = cfg(Variant::Bi);
        strict.epsilon = 1e-6;
        assert_same_scores(&engine, &compute(&f.pattern, &f.data, &strict).unwrap());
    }

    #[test]
    fn invalid_rerun_leaves_session_usable() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        engine.run();
        let before: Vec<_> = engine.iter_pairs().collect();
        assert!(engine.rerun(|c| c.theta = 7.0).is_err());
        assert_eq!(
            engine.config().theta,
            0.0,
            "failed rerun must not change config"
        );
        let after: Vec<_> = engine.iter_pairs().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn score_serves_pruned_pairs_like_score_on_demand() {
        let f = figure1();
        let c = cfg(Variant::Simple).theta(1.0);
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &c).unwrap();
        engine.run();
        let fresh = compute(&f.pattern, &f.data, &c).unwrap();
        let hex_in_pattern = 1u32;
        assert_eq!(
            engine.get(hex_in_pattern, f.v[0]),
            None,
            "pair must be pruned"
        );
        let on_demand =
            crate::engine::score_on_demand(&f.pattern, &f.data, &c, &fresh, hex_in_pattern, f.v[0]);
        assert_eq!(
            engine.score(hex_in_pattern, f.v[0]).to_bits(),
            on_demand.to_bits()
        );
    }

    #[test]
    fn top_k_matches_result_top_k() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bijective)).unwrap();
        engine.run();
        let via_result = crate::topk::top_k_pairs(&engine.snapshot(), 5, false);
        assert_eq!(engine.top_k(5, false), via_result);
    }

    #[test]
    fn snapshot_equals_into_result() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        engine.run();
        let snap = engine.snapshot();
        let owned = engine.into_result();
        assert_eq!(snap.pair_count(), owned.pair_count());
        for (a, b) in snap.iter_pairs().zip(owned.iter_pairs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn label_fn_rerun_rebuilds_prepared_table() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        engine.rerun(|c| c.label_fn = LabelFn::JaroWinkler).unwrap();
        let fresh = compute(&f.pattern, &f.data, &FsimConfig::new(Variant::Simple)).unwrap();
        assert_same_scores(&engine, &fresh);
    }

    #[test]
    fn parallel_session_matches_sequential_session() {
        let f = figure1();
        let mut seq = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bijective)).unwrap();
        seq.run();
        let mut par =
            FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bijective).threads(4)).unwrap();
        par.run();
        for (a, b) in seq.iter_pairs().zip(par.iter_pairs()) {
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
    }

    #[test]
    fn get_out_of_range_nodes_is_none() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        let n1 = f.pattern.node_count() as u32;
        let n2 = f.data.node_count() as u32;
        // Dense store: out-of-range coordinates must not alias other slots.
        assert_eq!(engine.get(0, n2), None);
        assert_eq!(engine.get(0, n2 + 7), None);
        assert_eq!(engine.get(n1, 0), None);
        assert_eq!(engine.get(n1 + 3, n2 + 3), None);
    }

    #[test]
    fn apply_edits_matches_cold_recompute() {
        let f = figure1();
        for variant in Variant::ALL {
            let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(variant)).unwrap();
            engine.run();
            assert!(engine.can_replay_edits(), "trajectory must be recorded");
            let edits = [
                GraphEdit::add_edge(GraphSide::Right, f.v[0], f.v[1]),
                GraphEdit::relabel(GraphSide::Left, 1, "pent"),
            ];
            engine.apply_edits(&edits).unwrap();
            let g1_edited =
                f.pattern
                    .with_edits(&[], &[], &[(1, f.pattern.interner().intern("pent"))]);
            let g2_edited = f.data.with_edits(&[(f.v[0], f.v[1])], &[], &[]);
            let fresh = compute(&g1_edited, &g2_edited, &cfg(variant)).unwrap();
            assert_same_scores(&engine, &fresh);
            assert_eq!(engine.iterations(), fresh.iterations, "{variant}");
            assert_eq!(engine.converged(), fresh.converged, "{variant}");
            assert_eq!(
                engine.final_delta().to_bits(),
                fresh.final_delta.to_bits(),
                "{variant}"
            );
        }
    }

    #[test]
    fn apply_edits_chains_across_batches() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        engine.run();
        engine
            .apply_edits(&[GraphEdit::add_edge(GraphSide::Right, f.v[2], f.v[0])])
            .unwrap();
        assert!(engine.can_replay_edits(), "trajectory must chain");
        engine
            .apply_edits(&[GraphEdit::remove_edge(GraphSide::Right, f.v[2], f.v[0])])
            .unwrap();
        // Net effect of both batches: the original graph.
        let fresh = compute(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        assert_same_scores(&engine, &fresh);
    }

    #[test]
    fn noop_edit_batch_keeps_scores() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        let before: Vec<_> = engine.iter_pairs().collect();
        let existing_label = f.data.label_str(f.v[0]).to_string();
        let out = engine
            .apply_edits(&[
                GraphEdit::remove_edge(GraphSide::Right, f.v[0], f.v[1]), // absent
                GraphEdit::relabel(GraphSide::Right, f.v[0], existing_label), // same
            ])
            .unwrap();
        let after: Vec<_> = engine.iter_pairs().collect();
        assert_eq!(before, after);
        assert_eq!(out.pair_count(), before.len());
    }

    #[test]
    fn invalid_edit_leaves_session_untouched() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        let before: Vec<_> = engine.iter_pairs().collect();
        let vocab_before = f.pattern.interner().len();
        let err = engine
            .apply_edits(&[
                GraphEdit::relabel(GraphSide::Left, 0, "never-interned"),
                GraphEdit::add_edge(GraphSide::Left, 0, 999),
            ])
            .unwrap_err();
        assert!(matches!(err, EditError::NodeOutOfRange { node: 999, .. }));
        let after: Vec<_> = engine.iter_pairs().collect();
        assert_eq!(before, after);
        // The rejected batch must not have grown the shared vocabulary.
        assert_eq!(f.pattern.interner().len(), vocab_before);
        assert_eq!(f.pattern.interner().get("never-interned"), None);
    }

    #[test]
    fn edits_replay_evaluates_fewer_pairs_than_cold() {
        let f = figure1();
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        engine.run();
        let cold_first_iteration = engine.pairs_evaluated()[0];
        assert_eq!(cold_first_iteration, engine.pair_count());
        engine
            .apply_edits(&[GraphEdit::add_edge(GraphSide::Right, f.v[0], f.v[1])])
            .unwrap();
        assert!(
            engine.pairs_evaluated()[0] < cold_first_iteration,
            "warm first iteration must skip clean pairs: {:?}",
            engine.pairs_evaluated()
        );
    }

    #[test]
    fn edits_without_trajectory_still_match_cold() {
        let f = figure1();
        // A zero budget disables recording; apply_edits repairs the
        // structures but re-iterates cold — results must still match.
        let c = cfg(Variant::Bijective).trajectory_budget(0);
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &c).unwrap();
        engine.run();
        assert!(!engine.can_replay_edits());
        engine
            .apply_edits(&[GraphEdit::add_edge(GraphSide::Right, f.v[1], f.v[0])])
            .unwrap();
        let g2_edited = f.data.with_edits(&[(f.v[1], f.v[0])], &[], &[]);
        let fresh = compute(&f.pattern, &g2_edited, &c).unwrap();
        assert_same_scores(&engine, &fresh);
    }

    #[test]
    fn over_budget_recording_is_abandoned_mid_run_and_edits_still_match() {
        let f = figure1();
        let mut probe = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        probe.run();
        assert!(probe.iterations() > 3, "needs a multi-iteration run");
        // Room for three iterates only: recording starts, then abandons.
        let budget = 3 * probe.pair_count() * 8;
        let c = cfg(Variant::Bi).trajectory_budget(budget);
        let mut engine = FsimEngine::new(&f.pattern, &f.data, &c).unwrap();
        engine.run();
        assert!(
            !engine.can_replay_edits(),
            "over-budget recording must be dropped"
        );
        engine
            .apply_edits(&[GraphEdit::add_edge(GraphSide::Right, f.v[0], f.v[2])])
            .unwrap();
        let g2_edited = f.data.with_edits(&[(f.v[0], f.v[2])], &[], &[]);
        let fresh = compute(&f.pattern, &g2_edited, &c).unwrap();
        assert_same_scores(&engine, &fresh);
    }

    #[test]
    fn edits_under_pruning_match_cold() {
        let f = figure1();
        for theta in [0.0, 1.0] {
            let c = cfg(Variant::Bijective).theta(theta).upper_bound(0.3, 0.4);
            let mut engine = FsimEngine::new(&f.pattern, &f.data, &c).unwrap();
            engine.run();
            engine
                .apply_edits(&[
                    GraphEdit::add_edge(GraphSide::Right, f.v[3], f.v[0]),
                    GraphEdit::remove_edge(GraphSide::Right, f.v[2], 0),
                ])
                .unwrap();
            // Candidate membership may shift under the upper bound; the
            // result must match a cold engine on the edited graph.
            let (_, g2_now) = engine.graphs();
            let fresh = compute(&f.pattern, g2_now, &c).unwrap();
            assert_same_scores(&engine, &fresh);
        }
    }

    #[test]
    fn reading_before_run_panics() {
        let f = figure1();
        let engine = FsimEngine::new(&f.pattern, &f.data, &cfg(Variant::Bi)).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.get(0, 0);
        }));
        assert!(err.is_err());
    }
}
