//! Sharded execution: the fixpoint of Equation 3 over **u-row shards**
//! with boundary exchange, for maintained sets whose pair-dependency CSR
//! exceeds one memory budget ([`crate::config::ShardSpec`]).
//!
//! The candidate store is partitioned into `K` contiguous `u`-row ranges
//! ([`ShardPlan`]), balanced by the same degree-product entry estimate
//! `ConvergenceMode::Auto` uses for its budget check. Each iteration of
//! Algorithm 1 then sweeps the shards one at a time: a shard's dependency
//! CSR ([`super::deps::ShardCsr`]) is built, its dirty slots are evaluated
//! against the *global* previous-iteration score buffer, and the CSR is
//! dropped before the next shard is touched — peak resident CSR memory is
//! one shard's worth, not the store's (`BENCH_sharding.json` records the
//! curve). The price is rebuilding each visited shard's entry lists every
//! sweep instead of once per store.
//!
//! **Boundary exchange.** Cross-shard dependencies are not materialized as
//! a reverse CSR (that alone would be `O(total entries)` resident — the
//! memory the mode exists to avoid). Instead the [`BoundaryTable`] keeps,
//! per slot, a `u64` mask of the shards whose dependency lists read it
//! (filled as a byproduct of the first full sweep's shard builds), and the
//! driver carries the previous iteration's **frontier** — the changed
//! slots and their score deltas — across shard visits. A sweep visits a
//! shard only if some changed slot's mask names it; within a visited
//! shard, a slot is re-evaluated exactly when one of its forward entries
//! references a changed slot. That is the same "dependents of the changed
//! set" rule the unsharded dirty scheduler applies through its reverse
//! CSR, so **sharded exact execution is bitwise identical to unsharded**
//! — scores, iteration counts, deltas and per-iteration evaluation counts
//! (`tests/sharded_convergence.rs` property-checks this across variants ×
//! θ × pruning × threads × K).
//!
//! **Approximate scheduling** works within shards through the same
//! frontier: instead of pushing suppressed deltas through a reverse CSR
//! ([`ApproxState::bump`]), the driver *pulls* them — when a shard is
//! visited, each slot folds the maximum delta among its changed
//! dependencies into its accumulator and is woken once the accumulator
//! crosses the threshold. The fold happens exactly one iteration after
//! the delta was produced, the accumulator resets only on evaluation, and
//! a final fold pass covers the terminating iteration's deltas — the same
//! invariants as the unsharded accounting, so the certified error bound
//! of [`ApproxState::error_bound`] holds unchanged.

use super::deps::{MappedShardCsr, ShardCsr};
use super::iterate::{effective_threads, ApproxState};
use super::parallel::{eval_worklist_parallel, IterationOutcome, Runtime};
use crate::config::{FsimConfig, ShardSpec};
use crate::operators::{DepEntry, OpCtx, OpScratch, Operator};
use crate::store::PairStore;
use fsim_graph::Graph;
use fsim_snapshot::SnapshotError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Partition of the candidate store's slots into contiguous u-row ranges,
/// balanced by the per-row degree-product entry estimate. Rows are never
/// split: a shard boundary always coincides with a change of `u`, so "the
/// shards containing a dirty row" is a well-defined repair unit.
///
/// Valid exactly as long as the store's slot numbering (it is dropped
/// with the store, and on any edit that changes pair membership).
pub(crate) struct ShardPlan {
    /// Shard `s` owns global slots `bounds[s]..bounds[s + 1]`
    /// (length `k + 1`).
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Builds a plan with at most `k` shards (fewer when the store has
    /// fewer distinct `u`-rows than `k`), cutting at row boundaries so
    /// each shard's estimated dependency entries approach an equal share.
    ///
    /// The cut rule is adaptive: at every row boundary the target is
    /// `remaining weight / remaining shards`, and the boundary is taken
    /// as soon as adding half of the next row would overshoot it — so a
    /// single heavy row early in the store cannot drag every later cut
    /// off its mark, and the heaviest shard stays close to the heaviest
    /// single row (rows are never split).
    pub(crate) fn build(g1: &Graph, g2: &Graph, store: &PairStore, k: usize) -> Self {
        let n = store.len();
        let k = k.clamp(1, FsimConfig::MAX_SHARDS);
        let mut total: u128 = 0;
        let weights: Vec<u64> = store
            .pairs
            .iter()
            .map(|&(u, v)| {
                // The slot's estimated entry count (cf.
                // `candidates::estimated_dep_entries`), plus one so
                // isolated pairs still carry weight.
                let w = g1.out_degree(u) as u64 * g2.out_degree(v) as u64
                    + g1.in_degree(u) as u64 * g2.in_degree(v) as u64
                    + 1;
                total += w as u128;
                w
            })
            .collect();
        // Per-row prefix: (first slot, row weight).
        let mut rows: Vec<(usize, u128)> = Vec::new();
        for (slot, &w) in weights.iter().enumerate() {
            if slot == 0 || store.pairs[slot].0 != store.pairs[slot - 1].0 {
                rows.push((slot, 0));
            }
            rows.last_mut().expect("pushed above").1 += w as u128;
        }
        let mut bounds = vec![0usize];
        let mut remaining = total;
        let mut shards_left = k as u128;
        let mut acc: u128 = 0;
        for &(first_slot, row_w) in &rows {
            if shards_left > 1 && acc > 0 {
                let target = remaining / shards_left;
                if acc + row_w / 2 > target {
                    bounds.push(first_slot);
                    remaining -= acc;
                    shards_left -= 1;
                    acc = 0;
                }
            }
            acc += row_w;
        }
        bounds.push(n);
        Self { bounds }
    }

    /// Number of shards.
    pub(crate) fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Global slot range of shard `s`.
    pub(crate) fn range(&self, s: usize) -> (usize, usize) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The shard owning a global slot.
    pub(crate) fn shard_of(&self, slot: usize) -> usize {
        self.bounds.partition_point(|&b| b <= slot) - 1
    }
}

/// The boundary-exchange table: for each slot, the set of shards whose
/// dependency lists read it, as a `u64` bitmask (hence
/// [`FsimConfig::MAX_SHARDS`] = 64). Together with the per-iteration
/// changed-slot frontier this is the cross-shard half of dirty
/// scheduling: a changed slot's mask names exactly the shards that must
/// be visited next sweep.
///
/// Masks are filled as a byproduct of shard-CSR builds during a sweep
/// that visits *every* shard (the first sweep of a run, or the first
/// after [`reset`](Self::reset)); until then `complete` is `false` and
/// the driver conservatively visits all shards. Masks may safely be a
/// *superset* of the true reader sets — extra bits cost an unnecessary
/// shard visit that evaluates nothing, missing bits would break bitwise
/// identity — which is why any edit that re-derives dependency entries
/// resets the table.
pub(crate) struct BoundaryTable {
    read_by: Vec<u64>,
    complete: bool,
}

impl BoundaryTable {
    fn new(n: usize) -> Self {
        Self {
            read_by: vec![0; n],
            complete: false,
        }
    }

    /// Invalidates the masks (dependency entries changed under the same
    /// slot numbering); the next run's first sweep rebuilds them.
    pub(crate) fn reset(&mut self) {
        self.read_by.iter_mut().for_each(|m| *m = 0);
        self.complete = false;
    }
}

/// Process-unique suffix source for spill directories, so concurrent
/// sessions of one process (e.g. `fsimd` namespaces) sharing a
/// `spill_dir` never collide.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// On-disk cache of built [`ShardCsr`]s under a session-private
/// subdirectory of [`FsimConfig::spill_dir`]. A shard's CSR is written
/// on first build (atomic temp + rename, single-section `FSNP`),
/// mapped and validated once on the next sweep, and the retained
/// mapping ([`MappedShardCsr`]) is reborrowed by every sweep after —
/// attacking the rebuild-per-sweep cost sharded warm runs otherwise
/// pay (`BENCH_snapshot.json` records the trade).
///
/// A spill file is valid exactly as long as the inputs of
/// `ShardCsr::build` are unchanged: the graphs, the store (slots and
/// fallback), θ/label eligibility and the operator. The owning session
/// clears the valid flags on every entry re-derivation and config
/// change ([`ShardState::invalidate_entries`] /
/// [`ShardState::clear_spill`]); a stale or corrupt file read back is
/// detected by the container checksums plus range validation and
/// falls back to a rebuild. Spill I/O failures silently disable
/// spilling for the session — spilling is a cache, never a
/// correctness dependency.
pub(crate) struct SpillState {
    dir: PathBuf,
    written: Vec<bool>,
    /// Retained spill mappings, one per shard: each file is opened,
    /// checksummed and structurally validated once (on the first sweep
    /// after it was written), then later sweeps reborrow its CSR
    /// columns straight from the mapping — no per-sweep I/O, no
    /// per-sweep validation. Shared by `Arc` so an in-flight sweep
    /// keeps its mapping alive across an invalidation.
    mapped: Vec<Option<Arc<MappedShardCsr>>>,
}

impl SpillState {
    fn create(base: &Path, k: usize) -> Option<Self> {
        let dir = base.join(format!(
            "spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).ok()?;
        Some(Self {
            dir,
            written: vec![false; k],
            mapped: vec![None; k],
        })
    }

    fn path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.fsnp"))
    }

    fn clear(&mut self) {
        self.written.iter_mut().for_each(|w| *w = false);
        self.mapped.iter_mut().for_each(|m| *m = None);
    }

    /// Drops shard `shard`'s spill (stale file or failed map).
    fn forget(&mut self, shard: usize) {
        self.written[shard] = false;
        self.mapped[shard] = None;
    }

    /// The shard's CSR out of the spill cache: the retained mapping
    /// when one is live and still matches the plan range, otherwise a
    /// fresh map-and-validate of the spill file (retained for the
    /// sweeps after).
    fn remap(&mut self, shard: usize, lo: usize, hi: usize) -> Result<ShardCsr, SnapshotError> {
        let m = match &self.mapped[shard] {
            Some(m) if m.covers(lo, hi) => Arc::clone(m),
            _ => {
                let m = Arc::new(MappedShardCsr::map(&self.path(shard), lo, hi)?);
                self.mapped[shard] = Some(Arc::clone(&m));
                m
            }
        };
        Ok(ShardCsr::from_mapped(m))
    }
}

impl Drop for SpillState {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Loads shard `shard`'s CSR from spill when a valid file exists,
/// otherwise builds it (writing the spill file as a side effect when
/// spilling is enabled). Bitwise transparent: a re-mapped CSR is
/// field-for-field identical to a rebuilt one, so scores, iteration
/// counts and evaluation counts cannot depend on the spill path.
#[allow(clippy::too_many_arguments)]
fn obtain_shard_csr<O: Operator>(
    spill: &mut Option<SpillState>,
    shard: usize,
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    store: &PairStore,
    op: &O,
    lo: usize,
    hi: usize,
) -> ShardCsr {
    if let Some(sp) = spill.as_mut() {
        if sp.written[shard] {
            match sp.remap(shard, lo, hi) {
                Ok(csr) => return csr,
                // Stale or corrupt: forget the file and rebuild.
                Err(_) => sp.forget(shard),
            }
        }
        let csr = ShardCsr::build(g1, g2, ctx, store, op, lo, hi);
        match csr.write_spill(&sp.path(shard)) {
            Ok(()) => sp.written[shard] = true,
            // Disk trouble: drop the whole spill cache (removing the
            // directory) and run unspilled from here on.
            Err(_) => *spill = None,
        }
        return csr;
    }
    ShardCsr::build(g1, g2, ctx, store, op, lo, hi)
}

/// The session-cached sharded-execution state: the u-row plan plus the
/// boundary-exchange table and the optional CSR spill cache. Mutually
/// exclusive with the full `PairDepCsr` cache and invalidated with the
/// store, like it.
pub(crate) struct ShardState {
    pub(crate) plan: ShardPlan,
    pub(crate) boundary: BoundaryTable,
    /// The shard count this state was requested with (the `Fixed(k)` /
    /// auto-chosen `k` before row clamping) — the session's cache key.
    pub(crate) requested: usize,
    /// The on-disk CSR cache, when [`FsimConfig::spill_dir`] is set and
    /// the directory could be created.
    spill: Option<SpillState>,
}

impl ShardState {
    pub(crate) fn new(
        g1: &Graph,
        g2: &Graph,
        store: &PairStore,
        requested: usize,
        spill_dir: Option<&Path>,
    ) -> Self {
        let plan = ShardPlan::build(g1, g2, store, requested);
        let boundary = BoundaryTable::new(store.len());
        let spill = spill_dir.and_then(|base| SpillState::create(base, plan.k()));
        Self {
            plan,
            boundary,
            requested,
            spill,
        }
    }

    /// Invalidates everything derived from the dependency entries while
    /// keeping the plan: the boundary masks (rebuilt by the next full
    /// sweep) and the spilled CSRs (entries changed, files are stale).
    pub(crate) fn invalidate_entries(&mut self) {
        self.boundary.reset();
        self.clear_spill();
    }

    /// Marks every spilled CSR stale (configuration changed under the
    /// same plan — the entry lists may now differ). Files are
    /// overwritten on the next build.
    pub(crate) fn clear_spill(&mut self) {
        if let Some(sp) = self.spill.as_mut() {
            sp.clear();
        }
    }
}

/// A bitmask selecting all `k` shards.
fn full_mask(k: usize) -> u64 {
    debug_assert!((1..=64).contains(&k));
    u64::MAX >> (64 - k)
}

/// Iterates Equation 3 to convergence shard-by-shard (see the module
/// docs). `scores` holds `FSim⁰` (or, warm-started, a carried iterate) on
/// entry and the final scores on exit; `cur` is the reusable double
/// buffer. `initial_worklist` replaces the evaluate-everything first
/// sweep (the approximate edit warm restart); `approx` switches on
/// ε-aware scheduling exactly as in
/// [`run_delta`](super::iterate::run_delta).
///
/// Returns the outcome plus the **peak resident shard-CSR bytes** — the
/// largest single shard structure held at any point of the run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    store: &PairStore,
    label_terms: &[f64],
    state: &mut ShardState,
    scores: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    initial_worklist: Option<&[u32]>,
    mut approx: Option<&mut ApproxState>,
    rt: Option<&Runtime>,
) -> (IterationOutcome, usize) {
    let n = store.len();
    debug_assert_eq!(scores.len(), n);
    cur.clear();
    cur.resize(n, 0.0);
    let k = state.plan.k();
    let max_iters = cfg.effective_max_iters();
    if initial_worklist.is_some() {
        // Warm start: slots outside the worklist must read through the
        // double buffer as-is.
        cur.copy_from_slice(scores);
    }
    let warm_on: Option<Vec<bool>> = initial_worklist.map(|wl| {
        let mut on = vec![false; n];
        for &s in wl {
            on[s as usize] = true;
        }
        on
    });

    // The boundary frontier: C_{k−1} as a list + epoch marks, and each
    // changed slot's last score delta (read by the approximate pull).
    let mut changed: Vec<u32> = Vec::new();
    let mut next_changed: Vec<u32> = Vec::new();
    let mut mark: Vec<u64> = vec![0; n];
    let mut epoch = 0u64;
    let mut delta_of: Vec<f64> = vec![0.0; n];

    let mut local_wl: Vec<u32> = Vec::new();
    let mut eval_out: Vec<f64> = Vec::new();
    let mut scratch = OpScratch::new();
    let mut peak_bytes = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    let mut pairs_evaluated = Vec::new();
    let mut iter_seconds = Vec::new();

    while iterations < max_iters {
        let t0 = Instant::now();
        let first = iterations == 0;
        let filling_masks = !state.boundary.complete;
        // Shards to visit: all of them while the masks are incomplete or
        // on a cold first sweep; the union of the changed frontier's
        // reader masks afterwards. A warm first sweep visits only the
        // shards owning worklist slots.
        let visit: u64 = if filling_masks {
            full_mask(k)
        } else if first {
            match initial_worklist {
                Some(wl) => {
                    let mut m = 0u64;
                    for &s in wl {
                        m |= 1u64 << state.plan.shard_of(s as usize);
                    }
                    m
                }
                None => full_mask(k),
            }
        } else {
            let mut m = 0u64;
            for &c in &changed {
                m |= state.boundary.read_by[c as usize];
            }
            m
        };

        // Publish C_{k−1} membership and repair the double buffer: a slot
        // that changed last iteration but is not re-evaluated now still
        // holds its two-iterations-old value in `cur` (evaluated slots
        // overwrite their copy below) — exactly `run_delta`'s repair.
        epoch += 1;
        for &c in &changed {
            mark[c as usize] = epoch;
            cur[c as usize] = scores[c as usize];
        }

        let mut delta = 0.0f64;
        let mut evaluated = 0usize;
        next_changed.clear();
        for shard in 0..k {
            if visit & (1u64 << shard) == 0 {
                continue;
            }
            let (lo, hi) = state.plan.range(shard);
            if lo == hi {
                continue;
            }
            let csr = obtain_shard_csr(&mut state.spill, shard, g1, g2, ctx, store, op, lo, hi);
            peak_bytes = peak_bytes.max(csr.bytes());
            if filling_masks {
                for slot in lo..hi {
                    for e in csr.deps_of(slot) {
                        if e.slot != DepEntry::CONST {
                            state.boundary.read_by[e.slot as usize] |= 1u64 << shard;
                        }
                    }
                }
            }

            // The shard's local worklist for this sweep.
            local_wl.clear();
            if first {
                match &warm_on {
                    Some(on) => {
                        local_wl.extend((lo..hi).filter(|&s| on[s]).map(|s| s as u32));
                    }
                    None => local_wl.extend(lo as u32..hi as u32),
                }
            } else if let Some(ap) = approx.as_deref_mut() {
                // ε-aware pull: fold the frontier's deltas into each
                // slot's accumulator; wake it on a threshold crossing
                // (the accumulator resets on evaluation below).
                for slot in lo..hi {
                    let mut m = 0.0f64;
                    for e in csr.deps_of(slot) {
                        if e.slot != DepEntry::CONST && mark[e.slot as usize] == epoch {
                            let d = delta_of[e.slot as usize];
                            if d > m {
                                m = d;
                            }
                        }
                    }
                    let pending = ap.acc[slot] + m;
                    if pending > ap.threshold {
                        local_wl.push(slot as u32);
                    } else {
                        ap.acc[slot] = pending;
                    }
                }
            } else {
                // Exact: re-evaluate exactly the dependents of C_{k−1}.
                for slot in lo..hi {
                    let dirty = csr
                        .deps_of(slot)
                        .any(|e| e.slot != DepEntry::CONST && mark[e.slot as usize] == epoch);
                    if dirty {
                        local_wl.push(slot as u32);
                    }
                }
            }

            // Evaluate the worklist (Jacobi: pure reads of `scores`,
            // disjoint writes of `cur` — thread count cannot change any
            // bit). The session runtime is used only when the worklist is
            // long enough to amortize a dispatch.
            let use_rt = rt.filter(|_| effective_threads(cfg.threads, local_wl.len()) > 1);
            if let Some(rt) = use_rt {
                eval_out.clear();
                eval_out.resize(local_wl.len(), 0.0);
                eval_worklist_parallel(
                    rt,
                    &local_wl,
                    scores,
                    &mut eval_out,
                    |slot, prev, scratch| {
                        csr.eval_slot(cfg, op, store, slot, prev, scratch, label_terms[slot])
                    },
                );
                for (i, &slot_id) in local_wl.iter().enumerate() {
                    let slot = slot_id as usize;
                    let s = eval_out[i];
                    let d = (s - scores[slot]).abs();
                    if d > delta {
                        delta = d;
                    }
                    if s.to_bits() != scores[slot].to_bits() {
                        next_changed.push(slot_id);
                        delta_of[slot] = d;
                    }
                    cur[slot] = s;
                    if let Some(ap) = approx.as_deref_mut() {
                        ap.acc[slot] = 0.0;
                    }
                }
            } else {
                for &slot_id in &local_wl {
                    let slot = slot_id as usize;
                    let s = csr.eval_slot(
                        cfg,
                        op,
                        store,
                        slot,
                        scores,
                        &mut scratch,
                        label_terms[slot],
                    );
                    let d = (s - scores[slot]).abs();
                    if d > delta {
                        delta = d;
                    }
                    if s.to_bits() != scores[slot].to_bits() {
                        next_changed.push(slot_id);
                        delta_of[slot] = d;
                    }
                    cur[slot] = s;
                    if let Some(ap) = approx.as_deref_mut() {
                        ap.acc[slot] = 0.0;
                    }
                }
            }
            evaluated += local_wl.len();
            // `csr` drops here: only one shard's CSR is ever resident.
        }
        if filling_masks {
            // Every shard was visited, so every dependency contributed
            // its reader bit.
            state.boundary.complete = true;
        }

        pairs_evaluated.push(evaluated);
        iter_seconds.push(t0.elapsed().as_secs_f64());
        std::mem::swap(scores, cur);
        std::mem::swap(&mut changed, &mut next_changed);
        final_delta = delta;
        iterations += 1;
        let stop = match approx.as_deref() {
            Some(ap) => ap.stop_delta,
            None => cfg.epsilon,
        };
        if delta < stop {
            converged = true;
            break;
        }
    }

    // Approximate runs: the terminating iteration's deltas have not been
    // folded yet (the pull happens one sweep later, which never runs).
    // One scan pass — builds, no evaluations, no resets — charges them to
    // the accumulators so the reported bound certifies the returned
    // scores, mirroring the unsharded rule that propagation runs even on
    // the converging iteration.
    if let Some(ap) = approx {
        if !changed.is_empty() {
            epoch += 1;
            for &c in &changed {
                mark[c as usize] = epoch;
            }
            let visit = if state.boundary.complete {
                let mut m = 0u64;
                for &c in &changed {
                    m |= state.boundary.read_by[c as usize];
                }
                m
            } else {
                full_mask(k)
            };
            for shard in 0..k {
                if visit & (1u64 << shard) == 0 {
                    continue;
                }
                let (lo, hi) = state.plan.range(shard);
                if lo == hi {
                    continue;
                }
                let csr = obtain_shard_csr(&mut state.spill, shard, g1, g2, ctx, store, op, lo, hi);
                peak_bytes = peak_bytes.max(csr.bytes());
                for slot in lo..hi {
                    let mut m = 0.0f64;
                    for e in csr.deps_of(slot) {
                        if e.slot != DepEntry::CONST && mark[e.slot as usize] == epoch {
                            let d = delta_of[e.slot as usize];
                            if d > m {
                                m = d;
                            }
                        }
                    }
                    ap.acc[slot] += m;
                }
            }
        }
    }

    (
        IterationOutcome {
            iterations,
            converged,
            final_delta,
            pairs_evaluated,
            iter_seconds,
        },
        peak_bytes,
    )
}

/// Resolves the shard count an auto-sharded session should use for an
/// estimated CSR footprint: the smallest `K` whose per-shard share fits
/// the budget, clamped to `2..=MAX_SHARDS` (a zero budget degrades to the
/// maximum — best effort rather than refusal).
pub(crate) fn auto_shard_count(estimated_bytes: u128, budget: usize) -> usize {
    if budget == 0 {
        return FsimConfig::MAX_SHARDS;
    }
    estimated_bytes
        .div_ceil(budget as u128)
        .clamp(2, FsimConfig::MAX_SHARDS as u128) as usize
}

/// Whether a configuration *forces* sharded execution regardless of the
/// budget (the `Fixed(k)` opt-in).
pub(crate) fn forced_shards(cfg: &FsimConfig) -> Option<usize> {
    match cfg.shards {
        ShardSpec::Fixed(k) => Some(k),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::operators::VariantOp;
    use fsim_graph::graph_from_parts;
    use fsim_labels::LabelFn;

    fn setup() -> (Graph, Graph, FsimConfig) {
        let g1 = graph_from_parts(&["a", "b", "a", "b"], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g2 = graph_from_parts(&["a", "b", "b"], &[(0, 1), (1, 2), (2, 0)]);
        let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
        (g1, g2, cfg)
    }

    #[test]
    fn plan_cuts_at_row_boundaries_and_covers_every_slot() {
        let (g1, g2, cfg) = setup();
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        for k in [1, 2, 3, 64] {
            let plan = ShardPlan::build(&g1, &g2, &store, k);
            assert!(plan.k() >= 1 && plan.k() <= k);
            let mut covered = 0;
            for s in 0..plan.k() {
                let (lo, hi) = plan.range(s);
                assert!(lo <= hi);
                covered += hi - lo;
                // Row-boundary invariant: a shard never splits a u-row.
                if lo > 0 && lo < store.len() {
                    assert_ne!(
                        store.pairs[lo - 1].0,
                        store.pairs[lo].0,
                        "k={k} shard {s} splits a row"
                    );
                }
                for slot in lo..hi {
                    assert_eq!(plan.shard_of(slot), s, "k={k}");
                }
            }
            assert_eq!(covered, store.len(), "k={k}");
        }
    }

    #[test]
    fn auto_shard_count_fits_the_budget() {
        assert_eq!(auto_shard_count(100, 100), 2, "oversized callers shard");
        assert_eq!(auto_shard_count(1000, 100), 10);
        assert_eq!(auto_shard_count(1001, 100), 11);
        assert_eq!(auto_shard_count(u128::MAX, 100), FsimConfig::MAX_SHARDS);
        assert_eq!(auto_shard_count(1000, 0), FsimConfig::MAX_SHARDS);
    }

    #[test]
    fn full_mask_selects_exactly_k_shards() {
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    fn spilled_sharded_run_is_bitwise_identical_and_cleans_up() {
        use crate::engine::FsimEngine;
        let (g1, g2, cfg) = setup();
        let cfg = cfg.shards(ShardSpec::Fixed(3));
        let mut plain = FsimEngine::new(&g1, &g2, &cfg).unwrap();
        plain.run();

        let base = std::env::temp_dir().join(format!("fsim-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let spill_cfg = cfg.clone().spill_dir(&base);
        {
            let mut spilled = FsimEngine::new(&g1, &g2, &spill_cfg).unwrap();
            spilled.run();
            // The spill directory holds one file per shard after a run.
            let subdirs: Vec<_> = std::fs::read_dir(&base).unwrap().flatten().collect();
            assert_eq!(subdirs.len(), 1, "one session-private spill subdir");
            let files = std::fs::read_dir(subdirs[0].path()).unwrap().count();
            assert_eq!(files, spilled.shard_count());
            assert_eq!(plain.iterations(), spilled.iterations());
            assert_eq!(plain.pairs_evaluated(), spilled.pairs_evaluated());
            for (a, b) in plain.iter_pairs().zip(spilled.iter_pairs()) {
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
            // A warm rerun of the same config re-maps instead of
            // rebuilding — still bitwise.
            spilled.run();
            for (a, b) in plain.iter_pairs().zip(spilled.iter_pairs()) {
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
        }
        // Dropping the session removes its spill subdir.
        assert_eq!(std::fs::read_dir(&base).unwrap().count(), 0);
        std::fs::remove_dir_all(&base).ok();
    }
}
