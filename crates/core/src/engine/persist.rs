//! The session snapshot codec: [`FsimEngine::write_snapshot`] /
//! [`FsimEngine::restore`] over the `FSNP` container of
//! [`fsim_snapshot`].
//!
//! ## What is persisted vs re-derived
//!
//! Persisted (see `docs/SNAPSHOT.md` for the byte-level spec): the
//! config, the merged label interner, both graphs (labels already
//! remapped to the merged interner), the candidate store, converged
//! scores + label terms, the pair-dependency CSR (when cached), the
//! recorded iterate trajectory (freeze-point delta-compressed), the
//! approximate accumulators, the run diagnostics, and — when the label
//! function builds one — the prepared `|Σ| × |Σ|` similarity table,
//! whose O(|Σ|²) string-similarity rebuild would otherwise dominate
//! cold start.
//!
//! Re-derived on restore: the table-free label evaluations (`Indicator`
//! and constant terms), the sparse pair index (rebuilt from
//! the pair list in slot order), the iteration double buffer, the
//! worker pool (lazy), and shard state (rebuilt deterministically by
//! the next run). Per-iteration wall-clock times are *not* persisted —
//! they are measurements of a dead process — so a restored session
//! reports an empty [`FsimEngine::iteration_seconds`].
//!
//! ## Trajectory freeze-point encoding
//!
//! The live trajectory is a dense `T × |H|` matrix of iterates. Under
//! the monotone Jacobi update most slots converge early: slot `s`
//! reaches its final bit pattern at some iteration `f_s ≤ T − 1` and
//! never changes again. The snapshot stores, per slot, `f_s` and the
//! column prefix `traj[0..=f_s][s]`; reconstruction reads
//! `traj[t][s] = col_s[min(t, f_s)]` — lossless, bitwise, and in
//! practice a multiple smaller than the dense matrix (measured by
//! `BENCH_snapshot.json`).

use crate::config::{
    ConvergenceMode, FsimConfig, InitScheme, LabelTermMode, MatcherKind, ShardSpec, Variant,
};
use crate::engine::deps::{put_dep_entries, read_dep_entries, PairDepCsr};
use crate::engine::session::{FsimEngine, RestoredParts};
use crate::operators::VariantOp;
use crate::store::{Fallback, PairIndex, PairStore};
use fsim_graph::csr::Csr;
use fsim_graph::{pair_key, FxHashMap, Graph, LabelId, LabelInterner};
use fsim_labels::LabelFn;
use fsim_snapshot::cursor::{put_f64_slice, put_u32_slice, put_usize_slice};
use fsim_snapshot::writer::{put_f64, put_u32, put_u64, put_u8, put_usize, SnapshotBuilder};
use fsim_snapshot::{Cursor, SnapshotError, SnapshotFile};
use std::path::Path;
use std::sync::Arc;

/// Session configuration (everything but `spill_dir`, a machine-local
/// path).
const SEC_CONFIG: u32 = 1;
/// Merged label interner: strings in id order.
const SEC_INTERNER: u32 = 2;
/// First graph: engine-aligned labels + both adjacency CSRs.
const SEC_GRAPH1: u32 = 3;
/// Second graph, same layout.
const SEC_GRAPH2: u32 = 4;
/// Candidate store: pair list, index kind, pruning fallback.
const SEC_STORE: u32 = 5;
/// Converged scores + cached label terms.
const SEC_SCORES: u32 = 6;
/// Pair-dependency CSR (optional — present when the session cached one).
const SEC_DEPS: u32 = 7;
/// Freeze-point-compressed iterate trajectory (optional).
const SEC_TRAJECTORY: u32 = 8;
/// Approximate-mode accumulators (optional).
const SEC_APPROX: u32 = 9;
/// Run diagnostics: iterations, convergence, error bound, …
const SEC_DIAG: u32 = 10;
/// Prepared label-similarity table (optional — present when the label
/// function builds one; `Indicator` and constant label terms run
/// table-free). Persisting it makes restore skip the O(|Σ|²)
/// string-similarity computation that otherwise dominates cold start.
const SEC_LABEL_TABLE: u32 = 11;

/// Every section id this build understands, with display names.
const KNOWN_SECTIONS: &[(u32, &str)] = &[
    (SEC_CONFIG, "config"),
    (SEC_INTERNER, "interner"),
    (SEC_GRAPH1, "graph1"),
    (SEC_GRAPH2, "graph2"),
    (SEC_STORE, "store"),
    (SEC_SCORES, "scores"),
    (SEC_DEPS, "deps"),
    (SEC_TRAJECTORY, "trajectory"),
    (SEC_APPROX, "approx"),
    (SEC_DIAG, "diag"),
    (SEC_LABEL_TABLE, "label_table"),
];

/// Hard ceiling on the iteration count a trajectory section may claim.
/// Real trajectories are bounded by `⌈log_w ε⌉` (tens); this cap only
/// exists so a hostile `T` cannot multiply into an OOM allocation.
const MAX_TRAJ_ITERS: usize = 16_384;

impl<'g> FsimEngine<'g, VariantOp> {
    /// Serializes the whole session to `path` as an `FSNP` snapshot
    /// (atomic temp-file + rename; see `docs/SNAPSHOT.md`).
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the session uses a
    /// [`LabelFn::Custom`] closure — arbitrary code cannot be
    /// persisted. Only built-in-operator (`VariantOp`) sessions expose
    /// this API, for the same reason.
    pub fn write_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        self.snapshot_builder()?.write_atomic(path)
    }

    /// Crash-test hook: like [`write_snapshot`](Self::write_snapshot),
    /// but the write "dies" after `byte_limit` bytes of the temp file,
    /// leaving the partial `.tmp` stub behind and never renaming.
    /// Exists for the crash-consistency battery; not useful otherwise.
    pub fn write_snapshot_failing_after(
        &self,
        path: &Path,
        byte_limit: usize,
    ) -> Result<(), SnapshotError> {
        self.snapshot_builder()?
            .write_atomic_failing_after(path, byte_limit)
    }

    /// The serialized snapshot image (what `write_snapshot` writes) —
    /// used by the golden-fixture test to compare bytes without I/O.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        Ok(self.snapshot_builder()?.to_bytes())
    }

    fn snapshot_builder(&self) -> Result<SnapshotBuilder, SnapshotError> {
        let parts = self.persist_parts();
        let mut b = SnapshotBuilder::new();
        encode_config(b.section(SEC_CONFIG), parts.cfg)?;
        encode_interner(b.section(SEC_INTERNER), parts.interner);
        encode_graph(b.section(SEC_GRAPH1), parts.g1, parts.labels1);
        encode_graph(b.section(SEC_GRAPH2), parts.g2, parts.labels2);
        encode_store(b.section(SEC_STORE), parts.store);
        let buf = b.section(SEC_SCORES);
        put_f64_slice(buf, parts.scores);
        put_f64_slice(buf, parts.label_terms);
        if let Some(deps) = parts.deps {
            encode_deps(b.section(SEC_DEPS), deps);
        }
        if let Some(traj) = parts.trajectory {
            encode_trajectory(b.section(SEC_TRAJECTORY), traj);
        }
        if let Some(acc) = parts.approx_acc {
            put_f64_slice(b.section(SEC_APPROX), acc);
        }
        let buf = b.section(SEC_DIAG);
        put_usize(buf, parts.iterations);
        put_u8(buf, u8::from(parts.converged));
        put_f64(buf, parts.final_delta);
        put_f64(buf, parts.error_bound);
        put_u8(buf, u8::from(parts.delta_scheduled));
        put_usize(buf, parts.shard_count);
        put_u8(buf, u8::from(parts.has_run));
        put_usize_slice(buf, parts.pairs_evaluated);
        if let Some(table) = parts.label_table {
            let buf = b.section(SEC_LABEL_TABLE);
            put_usize(buf, parts.interner.len());
            put_f64_slice(buf, table);
        }
        Ok(b)
    }
}

impl FsimEngine<'static, VariantOp> {
    /// Restores a session from a snapshot written by
    /// [`write_snapshot`](FsimEngine::write_snapshot).
    ///
    /// The restored session owns its graphs and is **bitwise
    /// equivalent** to the one that was snapshotted for every
    /// subsequent operation — `run`, `rerun`, `apply_edits`, `top_k`,
    /// `score` — including `error_bound` and per-iteration
    /// `pairs_evaluated` (property-tested in
    /// `tests/snapshot_roundtrip.rs`). Timing diagnostics
    /// (`iteration_seconds`, `peak_csr_bytes`) are measurements of the
    /// writing process and come back empty/zero.
    pub fn restore(path: &Path) -> Result<Self, SnapshotError> {
        let file = SnapshotFile::open(path, KNOWN_SECTIONS)?;
        Self::restore_from_file(&file)
    }

    fn restore_from_file(file: &SnapshotFile) -> Result<Self, SnapshotError> {
        let cfg = decode_config(file.section(SEC_CONFIG)?)?;
        let interner = decode_interner(file.section(SEC_INTERNER)?)?;
        let g1 = decode_graph("graph1", file.section(SEC_GRAPH1)?, &interner)?;
        let g2 = decode_graph("graph2", file.section(SEC_GRAPH2)?, &interner)?;
        let store = decode_store(file.section(SEC_STORE)?, &g1, &g2)?;
        let n = store.pairs.len();
        let mut cur = Cursor::new("scores", file.section(SEC_SCORES)?);
        let scores = cur.f64_vec()?;
        let label_terms = cur.f64_vec()?;
        cur.finish()?;
        if label_terms.len() != n || (!scores.is_empty() && scores.len() != n) {
            return Err(SnapshotError::Malformed {
                section: "scores",
                detail: format!(
                    "{} scores / {} label terms for {n} pairs",
                    scores.len(),
                    label_terms.len()
                ),
            });
        }
        let deps = if file.has_section(SEC_DEPS) {
            Some(decode_deps(file.section(SEC_DEPS)?, n)?)
        } else {
            None
        };
        let trajectory = if file.has_section(SEC_TRAJECTORY) {
            Some(decode_trajectory(
                file.section(SEC_TRAJECTORY)?,
                n,
                cfg.trajectory_budget,
            )?)
        } else {
            None
        };
        let approx_acc = if file.has_section(SEC_APPROX) {
            let mut cur = Cursor::new("approx", file.section(SEC_APPROX)?);
            let acc = cur.f64_vec()?;
            cur.finish()?;
            if acc.len() != n {
                return Err(SnapshotError::Malformed {
                    section: "approx",
                    detail: format!("{} accumulators for {n} pairs", acc.len()),
                });
            }
            Some(acc)
        } else {
            None
        };
        let label_table = if file.has_section(SEC_LABEL_TABLE) {
            // Only sessions whose label function actually builds a table
            // write this section; a file claiming one for a table-free
            // config is malformed, not a fallback case.
            let tabled = matches!(cfg.label_term, LabelTermMode::Sim)
                && !matches!(cfg.label_fn, LabelFn::Indicator);
            if !tabled {
                return Err(SnapshotError::Malformed {
                    section: "label_table",
                    detail: "table present for a table-free label configuration".to_string(),
                });
            }
            let mut cur = Cursor::new("label_table", file.section(SEC_LABEL_TABLE)?);
            let claimed_n = cur.usize64()?;
            let table = cur.f64_vec()?;
            cur.finish()?;
            let n = interner.len();
            if claimed_n != n || claimed_n.checked_mul(claimed_n) != Some(table.len()) {
                return Err(SnapshotError::Malformed {
                    section: "label_table",
                    detail: format!(
                        "{} entries claiming {claimed_n} labels against {n} interned",
                        table.len()
                    ),
                });
            }
            Some(table)
        } else {
            None
        };
        let mut cur = Cursor::new("diag", file.section(SEC_DIAG)?);
        let iterations = cur.usize64()?;
        let converged = cur.bool()?;
        let final_delta = cur.f64()?;
        let error_bound = cur.f64()?;
        let delta_scheduled = cur.bool()?;
        let shard_count = cur.usize64()?;
        let has_run = cur.bool()?;
        let pairs_evaluated = cur.usize_vec()?;
        cur.finish()?;
        Ok(FsimEngine::from_restored(RestoredParts {
            g1,
            g2,
            cfg,
            interner,
            store,
            label_terms,
            label_table,
            deps,
            scores,
            trajectory,
            approx_acc,
            iterations,
            converged,
            final_delta,
            error_bound,
            pairs_evaluated,
            delta_scheduled,
            shard_count,
            has_run,
        }))
    }
}

/// Scans `dir` for `*.fsnp` snapshots and restores each. Returns the
/// successfully restored sessions keyed by file stem, plus the files
/// that were skipped and why — partial `*.tmp` stubs from crashed
/// writes are not `.fsnp` files and are silently ignored, while a
/// corrupt `.fsnp` is reported in the skip list (never a panic).
#[allow(clippy::type_complexity)]
pub fn scan_snapshot_dir(
    dir: &Path,
) -> Result<
    (
        Vec<(String, FsimEngine<'static, VariantOp>)>,
        Vec<(String, SnapshotError)>,
    ),
    SnapshotError,
> {
    let mut loaded = Vec::new();
    let mut skipped = Vec::new();
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| SnapshotError::io("scan-dir", e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".fsnp") else {
            continue; // *.tmp stubs and foreign files
        };
        match FsimEngine::restore(&path) {
            Ok(engine) => loaded.push((stem.to_string(), engine)),
            Err(err) => skipped.push((name.to_string(), err)),
        }
    }
    Ok((loaded, skipped))
}

fn malformed(section: &'static str, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        section,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------- config

fn encode_config(buf: &mut Vec<u8>, cfg: &FsimConfig) -> Result<(), SnapshotError> {
    put_u32(
        buf,
        match cfg.variant {
            Variant::Simple => 0,
            Variant::DegreePreserving => 1,
            Variant::Bi => 2,
            Variant::Bijective => 3,
        },
    );
    put_u32(
        buf,
        match cfg.matcher {
            MatcherKind::Greedy => 0,
            MatcherKind::Hungarian => 1,
        },
    );
    put_f64(buf, cfg.w_out);
    put_f64(buf, cfg.w_in);
    put_f64(buf, cfg.theta);
    put_f64(buf, cfg.epsilon);
    put_u8(buf, u8::from(cfg.max_iters.is_some()));
    put_usize(buf, cfg.max_iters.unwrap_or(0));
    put_u32(
        buf,
        match cfg.label_fn {
            LabelFn::Indicator => 0,
            LabelFn::EditDistance => 1,
            LabelFn::JaroWinkler => 2,
            LabelFn::Custom(_) => {
                return Err(SnapshotError::Unsupported {
                    detail: "LabelFn::Custom closures cannot be serialized — snapshots \
                             support the built-in label functions only"
                        .to_string(),
                })
            }
        },
    );
    match cfg.label_term {
        LabelTermMode::Sim => {
            put_u32(buf, 0);
            put_f64(buf, 0.0);
        }
        LabelTermMode::Constant(c) => {
            put_u32(buf, 1);
            put_f64(buf, c);
        }
    }
    match cfg.init {
        InitScheme::LabelSim => {
            put_u32(buf, 0);
            put_f64(buf, 0.0);
        }
        InitScheme::Identity => {
            put_u32(buf, 1);
            put_f64(buf, 0.0);
        }
        InitScheme::OutDegreeRatio => {
            put_u32(buf, 2);
            put_f64(buf, 0.0);
        }
        InitScheme::Constant(c) => {
            put_u32(buf, 3);
            put_f64(buf, c);
        }
    }
    match cfg.upper_bound {
        Some(ub) => {
            put_u8(buf, 1);
            put_f64(buf, ub.alpha);
            put_f64(buf, ub.beta);
        }
        None => {
            put_u8(buf, 0);
            put_f64(buf, 0.0);
            put_f64(buf, 0.0);
        }
    }
    put_usize(buf, cfg.threads);
    put_u8(buf, u8::from(cfg.pin_identical));
    match cfg.convergence {
        ConvergenceMode::Auto => {
            put_u32(buf, 0);
            put_f64(buf, 0.0);
        }
        ConvergenceMode::FullSweep => {
            put_u32(buf, 1);
            put_f64(buf, 0.0);
        }
        ConvergenceMode::DeltaDriven => {
            put_u32(buf, 2);
            put_f64(buf, 0.0);
        }
        ConvergenceMode::Approximate { tolerance } => {
            put_u32(buf, 3);
            put_f64(buf, tolerance);
        }
    }
    match cfg.shards {
        ShardSpec::Auto => {
            put_u32(buf, 0);
            put_u64(buf, 0);
        }
        ShardSpec::Off => {
            put_u32(buf, 1);
            put_u64(buf, 0);
        }
        ShardSpec::Fixed(k) => {
            put_u32(buf, 2);
            put_usize(buf, k);
        }
    }
    put_usize(buf, cfg.csr_budget);
    put_usize(buf, cfg.trajectory_budget);
    Ok(())
}

fn decode_config(bytes: &[u8]) -> Result<FsimConfig, SnapshotError> {
    let mut cur = Cursor::new("config", bytes);
    let variant = match cur.u32()? {
        0 => Variant::Simple,
        1 => Variant::DegreePreserving,
        2 => Variant::Bi,
        3 => Variant::Bijective,
        t => return Err(malformed("config", format!("unknown variant tag {t}"))),
    };
    let matcher = match cur.u32()? {
        0 => MatcherKind::Greedy,
        1 => MatcherKind::Hungarian,
        t => return Err(malformed("config", format!("unknown matcher tag {t}"))),
    };
    let w_out = cur.f64()?;
    let w_in = cur.f64()?;
    let theta = cur.f64()?;
    let epsilon = cur.f64()?;
    let has_max = cur.u8()? != 0;
    let max_iters_raw = cur.usize64()?;
    let label_fn = match cur.u32()? {
        0 => LabelFn::Indicator,
        1 => LabelFn::EditDistance,
        2 => LabelFn::JaroWinkler,
        t => return Err(malformed("config", format!("unknown label-fn tag {t}"))),
    };
    let label_term = match (cur.u32()?, cur.f64()?) {
        (0, _) => LabelTermMode::Sim,
        (1, c) => LabelTermMode::Constant(c),
        (t, _) => return Err(malformed("config", format!("unknown label-term tag {t}"))),
    };
    let init = match (cur.u32()?, cur.f64()?) {
        (0, _) => InitScheme::LabelSim,
        (1, _) => InitScheme::Identity,
        (2, _) => InitScheme::OutDegreeRatio,
        (3, c) => InitScheme::Constant(c),
        (t, _) => return Err(malformed("config", format!("unknown init tag {t}"))),
    };
    let has_ub = cur.u8()? != 0;
    let (alpha, beta) = (cur.f64()?, cur.f64()?);
    let threads = cur.usize64()?;
    let pin_identical = cur.bool()?;
    let convergence = match (cur.u32()?, cur.f64()?) {
        (0, _) => ConvergenceMode::Auto,
        (1, _) => ConvergenceMode::FullSweep,
        (2, _) => ConvergenceMode::DeltaDriven,
        (3, tolerance) => ConvergenceMode::Approximate { tolerance },
        (t, _) => return Err(malformed("config", format!("unknown convergence tag {t}"))),
    };
    let shards = match (cur.u32()?, cur.usize64()?) {
        (0, _) => ShardSpec::Auto,
        (1, _) => ShardSpec::Off,
        (2, k) => ShardSpec::Fixed(k),
        (t, _) => return Err(malformed("config", format!("unknown shard tag {t}"))),
    };
    let csr_budget = cur.usize64()?;
    let trajectory_budget = cur.usize64()?;
    cur.finish()?;
    let mut cfg = FsimConfig::new(variant);
    cfg.matcher = matcher;
    cfg.w_out = w_out;
    cfg.w_in = w_in;
    cfg.theta = theta;
    cfg.epsilon = epsilon;
    cfg.max_iters = has_max.then_some(max_iters_raw);
    cfg.label_fn = label_fn;
    cfg.label_term = label_term;
    cfg.init = init;
    cfg.upper_bound = has_ub.then_some(crate::config::UpperBoundPruning { alpha, beta });
    cfg.threads = threads;
    cfg.pin_identical = pin_identical;
    cfg.convergence = convergence;
    cfg.shards = shards;
    cfg.csr_budget = csr_budget;
    cfg.trajectory_budget = trajectory_budget;
    cfg.spill_dir = None;
    cfg.validate()
        .map_err(|e| malformed("config", format!("invalid configuration: {e}")))?;
    Ok(cfg)
}

// -------------------------------------------------------------- interner

fn encode_interner(buf: &mut Vec<u8>, interner: &Arc<LabelInterner>) {
    let all = interner.all();
    put_usize(buf, all.len());
    for s in &all {
        fsim_snapshot::writer::put_bytes(buf, s.as_bytes());
    }
}

fn decode_interner(bytes: &[u8]) -> Result<Arc<LabelInterner>, SnapshotError> {
    let mut cur = Cursor::new("interner", bytes);
    // Length prefixes are ≥ 1 byte each.
    let count = cur.checked_len(1)?;
    let interner = LabelInterner::shared();
    for i in 0..count {
        let raw = cur.bytes()?;
        let s = std::str::from_utf8(raw)
            .map_err(|e| malformed("interner", format!("label {i} is not UTF-8: {e}")))?;
        let id = interner.intern(s);
        if id.index() != i {
            return Err(malformed(
                "interner",
                format!("duplicate label string {s:?} at id {i}"),
            ));
        }
    }
    cur.finish()?;
    Ok(interner)
}

// ---------------------------------------------------------------- graphs

fn encode_graph(buf: &mut Vec<u8>, g: &Graph, aligned_labels: &[LabelId]) {
    // The *engine-aligned* labels (merged-interner ids) are stored, so
    // restored graphs share the merged interner and the session's label
    // columns equal `g.labels()` again.
    debug_assert_eq!(aligned_labels.len(), g.node_count());
    put_usize(buf, aligned_labels.len());
    for l in aligned_labels {
        put_u32(buf, l.0);
    }
    let (out, inn) = g.csr_parts();
    for csr in [out, inn] {
        let (offsets, targets) = csr.raw_parts();
        put_u32_slice(buf, offsets);
        put_u32_slice(buf, targets);
    }
}

fn decode_graph(
    section: &'static str,
    bytes: &[u8],
    interner: &Arc<LabelInterner>,
) -> Result<Graph, SnapshotError> {
    let mut cur = Cursor::new(section, bytes);
    let checked_n = cur.checked_len(4)?;
    let raw = cur.take(checked_n * 4)?;
    let labels: Vec<LabelId> = raw
        .chunks_exact(4)
        .map(|c| LabelId(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect();
    let mut csrs = Vec::with_capacity(2);
    for _ in 0..2 {
        let offsets = cur.u32_vec()?;
        let targets = cur.u32_vec()?;
        csrs.push(Csr::from_raw_parts(offsets, targets).map_err(|e| malformed(section, e))?);
    }
    cur.finish()?;
    let inn = csrs.pop().expect("two CSRs pushed");
    let out = csrs.pop().expect("two CSRs pushed");
    Graph::from_csr_parts(labels, out, inn, Arc::clone(interner)).map_err(|e| malformed(section, e))
}

// ----------------------------------------------------------------- store

fn encode_store(buf: &mut Vec<u8>, store: &PairStore) {
    put_usize(buf, store.pairs.len());
    for &(u, v) in &store.pairs {
        put_u32(buf, u);
        put_u32(buf, v);
    }
    match &store.index {
        PairIndex::Dense { n2 } => {
            put_u32(buf, 0);
            put_u32(buf, *n2);
        }
        PairIndex::Sparse(_) => {
            // The map is exactly {pair_key(pairs[i]) → i}; rebuilt from
            // the pair list on restore.
            put_u32(buf, 1);
            put_u32(buf, 0);
        }
    }
    match &store.fallback {
        Fallback::Zero => {
            put_u32(buf, 0);
            put_usize(buf, 0);
        }
        Fallback::AlphaUb(map) => {
            put_u32(buf, 1);
            // Sorted by key for byte-deterministic output.
            let mut entries: Vec<(u64, f32)> = map.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable_by_key(|&(k, _)| k);
            put_usize(buf, entries.len());
            for (k, v) in entries {
                put_u64(buf, k);
                put_u32(buf, v.to_bits());
            }
        }
    }
}

fn decode_store(bytes: &[u8], g1: &Graph, g2: &Graph) -> Result<PairStore, SnapshotError> {
    let mut cur = Cursor::new("store", bytes);
    let checked_n = cur.checked_len(8)?;
    let raw = cur.take(checked_n * 8)?;
    let pairs: Vec<(u32, u32)> = raw
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            )
        })
        .collect();
    let (n1, n2) = (g1.node_count() as u64, g2.node_count() as u64);
    if let Some(&(u, v)) = pairs
        .iter()
        .find(|&&(u, v)| u as u64 >= n1 || v as u64 >= n2)
    {
        return Err(malformed(
            "store",
            format!("pair ({u}, {v}) out of graph range ({n1} × {n2} nodes)"),
        ));
    }
    let index = match cur.u32()? {
        0 => {
            let stored_n2 = cur.u32()?;
            if stored_n2 as u64 != n2 || pairs.len() as u64 != n1 * n2 {
                return Err(malformed(
                    "store",
                    format!(
                        "dense index claims n2 = {stored_n2} with {} pairs, graphs are {n1} × {n2}",
                        pairs.len()
                    ),
                ));
            }
            PairIndex::Dense { n2: stored_n2 }
        }
        1 => {
            cur.u32()?; // reserved
            if pairs.len() > u32::MAX as usize {
                return Err(malformed("store", "sparse index exceeds u32 slot space"));
            }
            // Sized up front: growth-rehashing this map dominated
            // restore before (`BENCH_snapshot.json`'s restore gate).
            let mut map = FxHashMap::with_capacity_and_hasher(pairs.len(), Default::default());
            for (i, &(u, v)) in pairs.iter().enumerate() {
                // lint:allow(lossy-cast-in-core): pairs.len() is checked against u32 slot space just above
                if map.insert(pair_key(u, v), i as u32).is_some() {
                    return Err(malformed("store", format!("duplicate pair ({u}, {v})")));
                }
            }
            PairIndex::Sparse(map)
        }
        t => return Err(malformed("store", format!("unknown index tag {t}"))),
    };
    let fallback = match cur.u32()? {
        0 => {
            cur.usize64()?; // reserved count (always 0)
            Fallback::Zero
        }
        1 => {
            let checked_m = cur.checked_len(12)?;
            let raw = cur.take(checked_m * 12)?;
            let mut map = FxHashMap::with_capacity_and_hasher(checked_m, Default::default());
            for c in raw.chunks_exact(12) {
                let k = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                let v = f32::from_bits(u32::from_le_bytes([c[8], c[9], c[10], c[11]]));
                map.insert(k, v);
            }
            Fallback::AlphaUb(map)
        }
        t => return Err(malformed("store", format!("unknown fallback tag {t}"))),
    };
    cur.finish()?;
    Ok(PairStore {
        pairs,
        index,
        fallback,
    })
}

// ------------------------------------------------------------------ deps

fn encode_deps(buf: &mut Vec<u8>, deps: &PairDepCsr) {
    let raw = deps.raw_parts();
    put_usize_slice(buf, raw.out_offsets);
    put_usize_slice(buf, raw.in_offsets);
    put_dep_entries(buf, raw.out_entries);
    put_dep_entries(buf, raw.in_entries);
    put_usize(buf, raw.dims.len());
    for d in raw.dims {
        for &v in d {
            put_u32(buf, v);
        }
    }
    put_usize_slice(buf, raw.rdep_offsets);
    put_u32_slice(buf, raw.rdeps);
}

fn decode_deps(bytes: &[u8], n_slots: usize) -> Result<PairDepCsr, SnapshotError> {
    let mut cur = Cursor::new("deps", bytes);
    let out_offsets = cur.usize_vec()?;
    let in_offsets = cur.usize_vec()?;
    let out_entries = read_dep_entries(&mut cur)?;
    let in_entries = read_dep_entries(&mut cur)?;
    let checked_dims = cur.checked_len(16)?;
    let mut dims = Vec::with_capacity(checked_dims);
    for _ in 0..checked_dims {
        dims.push([cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?]);
    }
    let rdep_offsets = cur.usize_vec()?;
    let rdeps = cur.u32_vec()?;
    cur.finish()?;
    PairDepCsr::from_raw_parts(
        out_offsets,
        in_offsets,
        out_entries,
        in_entries,
        dims,
        rdep_offsets,
        rdeps,
        n_slots,
    )
    .map_err(|e| malformed("deps", e))
}

// ------------------------------------------------------------ trajectory

fn encode_trajectory(buf: &mut Vec<u8>, traj: &[Vec<f64>]) {
    let t_count = traj.len();
    let n = traj.first().map_or(0, Vec::len);
    put_usize(buf, t_count);
    put_usize(buf, n);
    // Per-slot freeze points: the first iteration after which the
    // slot's bit pattern never changes again.
    let mut freeze = vec![0u32; n];
    for (s, f) in freeze.iter_mut().enumerate() {
        let mut fi = t_count - 1;
        while fi > 0 && traj[fi - 1][s].to_bits() == traj[fi][s].to_bits() {
            fi -= 1;
        }
        // lint:allow(lossy-cast-in-core): fi indexes the trajectory, whose length is capped at MAX_TRAJ_ITERS = 16384
        *f = fi as u32;
    }
    put_u32_slice(buf, &freeze);
    let total: u64 = freeze.iter().map(|&f| f as u64 + 1).sum();
    put_u64(buf, total);
    for (s, &f) in freeze.iter().enumerate() {
        for row in traj.iter().take(f as usize + 1) {
            put_f64(buf, row[s]);
        }
    }
}

fn decode_trajectory(
    bytes: &[u8],
    n_slots: usize,
    trajectory_budget: usize,
) -> Result<Vec<Vec<f64>>, SnapshotError> {
    let mut cur = Cursor::new("trajectory", bytes);
    let t_count = cur.usize64()?;
    let n = cur.usize64()?;
    if n != n_slots {
        return Err(malformed(
            "trajectory",
            format!("{n} slots per iterate, store has {n_slots}"),
        ));
    }
    if !(2..=MAX_TRAJ_ITERS).contains(&t_count) {
        return Err(malformed(
            "trajectory",
            format!("iteration count {t_count} outside 2..={MAX_TRAJ_ITERS}"),
        ));
    }
    // The dense reconstruction is the one place decoding expands beyond
    // the file's own size. The recorder never kept more than the
    // configured budget (plus one in-flight iterate), so anything
    // larger is inconsistent — reject it *before* allocating.
    let dense_bytes = (t_count as u64).saturating_mul(n as u64).saturating_mul(8);
    let budget_cap = (trajectory_budget as u64).saturating_mul(2).max(64 << 20);
    if dense_bytes > budget_cap {
        return Err(SnapshotError::LengthOverflow {
            section: "trajectory",
            claimed: dense_bytes,
            limit: budget_cap,
        });
    }
    let freeze = cur.u32_vec()?;
    if freeze.len() != n {
        return Err(malformed(
            "trajectory",
            format!("{} freeze points for {n} slots", freeze.len()),
        ));
    }
    if let Some(&bad) = freeze.iter().find(|&&f| f as usize >= t_count) {
        return Err(malformed(
            "trajectory",
            format!("freeze point {bad} beyond iteration count {t_count}"),
        ));
    }
    let total = cur.u64()?;
    let expected: u64 = freeze.iter().map(|&f| f as u64 + 1).sum();
    if total != expected {
        return Err(malformed(
            "trajectory",
            format!("column value count {total} != sum of freeze prefixes {expected}"),
        ));
    }
    let avail = (cur.remaining() / 8) as u64;
    if total > avail {
        return Err(SnapshotError::LengthOverflow {
            section: "trajectory",
            claimed: total,
            limit: avail,
        });
    }
    let mut traj = vec![vec![0.0f64; n]; t_count];
    for (s, &f) in freeze.iter().enumerate() {
        for row in traj.iter_mut().take(f as usize + 1) {
            row[s] = cur.f64()?;
        }
        // Propagate the frozen value to the remaining iterations.
        let frozen = traj[f as usize][s];
        for row in traj.iter_mut().skip(f as usize + 1) {
            row[s] = frozen;
        }
    }
    cur.finish()?;
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use fsim_graph::examples::figure1;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fsim-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_sessions_equal(a: &FsimEngine<'_, VariantOp>, b: &FsimEngine<'static, VariantOp>) {
        assert_eq!(a.pair_count(), b.pair_count());
        assert_eq!(a.iterations(), b.iterations());
        assert_eq!(a.converged(), b.converged());
        assert_eq!(a.final_delta().to_bits(), b.final_delta().to_bits());
        assert_eq!(a.error_bound().to_bits(), b.error_bound().to_bits());
        assert_eq!(a.pairs_evaluated(), b.pairs_evaluated());
        for (pa, pb) in a.iter_pairs().zip(b.iter_pairs()) {
            assert_eq!(pa.0, pb.0);
            assert_eq!(pa.1, pb.1);
            assert_eq!(
                pa.2.to_bits(),
                pb.2.to_bits(),
                "score at {:?}",
                (pa.0, pa.1)
            );
        }
    }

    #[test]
    fn roundtrip_figure1_bitwise() {
        let f = figure1();
        let cfg = FsimConfig::new(Variant::Bi).label_fn(fsim_labels::LabelFn::Indicator);
        let mut eng = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
        eng.run();
        let dir = tmpdir("roundtrip");
        let path = dir.join("fig1.fsnp");
        eng.write_snapshot(&path).unwrap();
        let restored = FsimEngine::restore(&path).unwrap();
        assert_sessions_equal(&eng, &restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restored_session_reruns_bitwise() {
        let f = figure1();
        let cfg = FsimConfig::new(Variant::Bijective).label_fn(fsim_labels::LabelFn::Indicator);
        let mut eng = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
        eng.run();
        let dir = tmpdir("rerun");
        let path = dir.join("fig1.fsnp");
        eng.write_snapshot(&path).unwrap();
        let mut restored = FsimEngine::restore(&path).unwrap();
        eng.rerun(|c| c.variant = Variant::Simple).unwrap();
        restored.rerun(|c| c.variant = Variant::Simple).unwrap();
        assert_sessions_equal(&eng, &restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn custom_label_fn_is_rejected() {
        use fsim_labels::LabelSim;
        #[derive(Debug)]
        struct One;
        impl LabelSim for One {
            fn sim(&self, _: &str, _: &str) -> f64 {
                1.0
            }
            fn name(&self) -> &'static str {
                "one"
            }
        }
        let f = figure1();
        let cfg =
            FsimConfig::new(Variant::Simple).label_fn(LabelFn::Custom(std::sync::Arc::new(One)));
        let mut eng = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
        eng.run();
        match eng.snapshot_bytes() {
            Err(SnapshotError::Unsupported { .. }) => {}
            other => panic!("expected Unsupported, got {:?}", other.map(|b| b.len())),
        }
    }

    #[test]
    fn scan_dir_skips_tmp_stubs_and_reports_corrupt() {
        let f = figure1();
        let cfg = FsimConfig::new(Variant::Simple).label_fn(fsim_labels::LabelFn::Indicator);
        let mut eng = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
        eng.run();
        let dir = tmpdir("scan");
        eng.write_snapshot(&dir.join("good.fsnp")).unwrap();
        eng.write_snapshot_failing_after(&dir.join("dead.fsnp"), 10)
            .unwrap_err();
        std::fs::write(dir.join("bad.fsnp"), b"not a snapshot").unwrap();
        let (loaded, skipped) = scan_snapshot_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "good");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, "bad.fsnp");
        std::fs::remove_dir_all(&dir).ok();
    }
}
