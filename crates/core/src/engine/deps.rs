//! The pair-dependency CSR: the iteration-invariant structure of
//! Equation 3, materialized once per candidate store.
//!
//! The inputs a pair `(u, v)`'s update reads — which neighbor pairs
//! `(x, y)` with `L(x, y) ≥ θ` its mapping operators consult, which score
//! slot (or pruning-fallback constant) each of those resolves to, and the
//! pair's own label term — are fixed across iterations. [`PairDepCsr`]
//! flattens all of it into contiguous arrays at session-prepare time, so
//! the hot loop is pure index arithmetic: no `PairIndex` lookups, no
//! `ctx.eligible` re-filtering, no hashed fallback probes.
//!
//! The reverse CSR (for each slot, the slots whose update reads it) drives
//! **dirty-pair scheduling**: iteration `k` re-evaluates a slot only if one
//! of its dependencies changed in iteration `k−1`. Because the Jacobi
//! update is a pure function of its inputs, a slot with unchanged inputs
//! reproduces its previous score bit for bit — so sparse iteration is
//! bitwise identical to the full sweep (`tests/delta_convergence.rs`
//! property-checks this across variants, θ, pruning and thread counts).

use crate::config::FsimConfig;
use crate::operators::{DepEntry, OpCtx, OpScratch, Operator};
use crate::store::{PairRef, PairStore};
use fsim_graph::Graph;
use fsim_snapshot::SnapshotError;

/// Rough per-entry footprint in bytes (one [`DepEntry`] plus its reverse
/// edge), used with [`crate::candidates::estimated_dep_entries`] to check
/// the CSR against the configured memory budget before building.
pub(crate) const BYTES_PER_ENTRY: u128 = (std::mem::size_of::<DepEntry>() + 4) as u128;

/// Rough per-slot footprint in bytes: offsets into three entry arrays plus
/// the stored neighborhood dimensions.
pub(crate) const BYTES_PER_SLOT: u128 = 48;

/// The flattened, θ-prefiltered dependency structure of a candidate store
/// (see the module docs). Valid exactly as long as the store it was built
/// from: the entries depend on the candidate set, the eligibility
/// constraint and the pruning fallback — all of which change only when the
/// store is rebuilt.
#[derive(Debug, PartialEq)]
pub(crate) struct PairDepCsr {
    /// Slot → range of `out_entries` (length `n + 1`).
    out_offsets: Vec<usize>,
    /// Slot → range of `in_entries` (length `n + 1`).
    in_offsets: Vec<usize>,
    /// Out-neighbor-pair dependencies, `(i, j)`-sorted per slot.
    out_entries: Vec<DepEntry>,
    /// In-neighbor-pair dependencies, `(i, j)`-sorted per slot.
    in_entries: Vec<DepEntry>,
    /// Slot → `[|N⁺(u)|, |N⁺(v)|, |N⁻(u)|, |N⁻(v)|]` (drive `Ω` / vacuity).
    dims: Vec<[u32; 4]>,
    /// Slot → range of `rdeps` (length `n + 1`).
    rdep_offsets: Vec<usize>,
    /// Reverse CSR: for each slot, the slots whose update reads it. May
    /// contain duplicates (a source feeding both directions of one pair);
    /// the scheduler's epoch marks deduplicate for free.
    rdeps: Vec<u32>,
}

impl PairDepCsr {
    /// Materializes the dependency structure of `store` under the session's
    /// evaluation context.
    pub(crate) fn build<O: Operator>(
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
    ) -> Self {
        let n = store.len();
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut out_entries = Vec::new();
        let mut in_entries = Vec::new();
        let mut dims = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        let mut const_buf = Vec::new();
        for &(u, v) in &store.pairs {
            let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
            push_direction(
                &mut out_entries,
                s1,
                s2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            out_offsets.push(out_entries.len());
            let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
            push_direction(
                &mut in_entries,
                t1,
                t2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            in_offsets.push(in_entries.len());
            dims.push([
                s1.len() as u32,
                s2.len() as u32,
                t1.len() as u32,
                t2.len() as u32,
            ]);
        }

        let (rdep_offsets, rdeps) =
            build_reverse(n, &out_offsets, &out_entries, &in_offsets, &in_entries);

        Self {
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
            rdep_offsets,
            rdeps,
        }
    }

    /// Incrementally repairs the CSR after a graph edit: slots outside
    /// `entry_dirty` copy their old dependency lists verbatim (with slots
    /// renumbered through `old_to_new`); dirty slots — and pairs that just
    /// entered the store — re-derive theirs from the edited graphs. The
    /// expensive per-entry work (eligibility filtering, pair resolution,
    /// fallback probing) is therefore proportional to the edit's dirty
    /// frontier, not to the store; only the reverse-CSR counting sort and
    /// the entry copy remain `O(total entries)` — branch-free linear
    /// passes.
    ///
    /// `store` is the repaired store; `old_to_new` / `new_to_old` come
    /// from [`crate::candidates::repair_candidates`]; `entry_dirty` is
    /// indexed by *new* slot and must cover every slot whose dependency
    /// list could have changed (a superset is safe).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn repaired<O: Operator>(
        &self,
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
        old_to_new: &[u32],
        new_to_old: &[u32],
        entry_dirty: &[bool],
    ) -> Self {
        use crate::candidates::NO_SLOT;
        let n = store.len();
        debug_assert_eq!(entry_dirty.len(), n);
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut out_entries = Vec::with_capacity(self.out_entries.len());
        let mut in_entries = Vec::with_capacity(self.in_entries.len());
        let mut dims = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        let copy_range = |dst: &mut Vec<DepEntry>, src: &[DepEntry]| {
            for e in src {
                let mut e = *e;
                if e.slot != DepEntry::CONST {
                    let mapped = old_to_new[e.slot as usize];
                    debug_assert_ne!(
                        mapped, NO_SLOT,
                        "clean slot depends on a removed pair — dirty set too small"
                    );
                    e.slot = mapped;
                }
                dst.push(e);
            }
        };
        let mut const_buf = Vec::new();
        for (slot, &(u, v)) in store.pairs.iter().enumerate() {
            let old_slot = new_to_old[slot];
            if old_slot != NO_SLOT && !entry_dirty[slot] {
                let o = old_slot as usize;
                copy_range(
                    &mut out_entries,
                    &self.out_entries[self.out_offsets[o]..self.out_offsets[o + 1]],
                );
                copy_range(
                    &mut in_entries,
                    &self.in_entries[self.in_offsets[o]..self.in_offsets[o + 1]],
                );
                dims.push(self.dims[o]);
            } else {
                let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
                push_direction(
                    &mut out_entries,
                    s1,
                    s2,
                    ctx,
                    store,
                    all_pairs,
                    fold_consts,
                    &mut const_buf,
                );
                let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
                push_direction(
                    &mut in_entries,
                    t1,
                    t2,
                    ctx,
                    store,
                    all_pairs,
                    fold_consts,
                    &mut const_buf,
                );
                dims.push([
                    s1.len() as u32,
                    s2.len() as u32,
                    t1.len() as u32,
                    t2.len() as u32,
                ]);
            }
            out_offsets.push(out_entries.len());
            in_offsets.push(in_entries.len());
        }
        let (rdep_offsets, rdeps) =
            build_reverse(n, &out_offsets, &out_entries, &in_offsets, &in_entries);
        Self {
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
            rdep_offsets,
            rdeps,
        }
    }

    /// Total dependency entries across both directions (diagnostics).
    pub(crate) fn entry_count(&self) -> usize {
        self.out_entries.len() + self.in_entries.len()
    }

    /// Resident heap footprint in bytes (entries, reverse CSR, offsets,
    /// dims) — the "peak CSR memory" the sharded driver is bounded
    /// against.
    pub(crate) fn bytes(&self) -> usize {
        self.entry_count() * std::mem::size_of::<DepEntry>()
            + self.rdeps.len() * std::mem::size_of::<u32>()
            + (self.out_offsets.len() + self.in_offsets.len() + self.rdep_offsets.len())
                * std::mem::size_of::<usize>()
            + self.dims.len() * std::mem::size_of::<[u32; 4]>()
    }

    /// Slot → dependents offsets (for the dirty scheduler).
    pub(crate) fn rdep_offsets(&self) -> &[usize] {
        &self.rdep_offsets
    }

    /// Concatenated dependents (for the dirty scheduler).
    pub(crate) fn rdeps(&self) -> &[u32] {
        &self.rdeps
    }

    /// Borrows the seven raw columns for the snapshot codec
    /// (`engine/persist.rs`). The reverse CSR is persisted too — it is
    /// derivable, but re-deriving it would cost a counting sort over
    /// every entry on each restore.
    pub(crate) fn raw_parts(&self) -> DepRawParts<'_> {
        DepRawParts {
            out_offsets: &self.out_offsets,
            in_offsets: &self.in_offsets,
            out_entries: &self.out_entries,
            in_entries: &self.in_entries,
            dims: &self.dims,
            rdep_offsets: &self.rdep_offsets,
            rdeps: &self.rdeps,
        }
    }

    /// Rebuilds a CSR from deserialized columns, validating every
    /// structural invariant `eval_slot` and the dirty scheduler index
    /// with — offset monotonicity and terminals, slot bounds — so a
    /// checksum-valid but logically inconsistent snapshot cannot cause
    /// a panic later.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        out_offsets: Vec<usize>,
        in_offsets: Vec<usize>,
        out_entries: Vec<DepEntry>,
        in_entries: Vec<DepEntry>,
        dims: Vec<[u32; 4]>,
        rdep_offsets: Vec<usize>,
        rdeps: Vec<u32>,
        n_slots: usize,
    ) -> Result<PairDepCsr, String> {
        check_offsets("out_offsets", &out_offsets, n_slots, out_entries.len())?;
        check_offsets("in_offsets", &in_offsets, n_slots, in_entries.len())?;
        check_offsets("rdep_offsets", &rdep_offsets, n_slots, rdeps.len())?;
        if dims.len() != n_slots {
            return Err(format!("dims has {} rows, store has {n_slots}", dims.len()));
        }
        check_entry_slots("out_entries", &out_entries, n_slots)?;
        check_entry_slots("in_entries", &in_entries, n_slots)?;
        if let Some(&bad) = rdeps.iter().find(|&&s| s as usize >= n_slots) {
            return Err(format!("rdep slot {bad} out of range ({n_slots} slots)"));
        }
        Ok(PairDepCsr {
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
            rdep_offsets,
            rdeps,
        })
    }

    /// Equation 3 for one slot, evaluated from the prepared dependency
    /// lists and the cached label term — bitwise identical to
    /// [`pair_update`](super::iterate::pair_update) on the same inputs.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_slot<O: Operator>(
        &self,
        cfg: &FsimConfig,
        op: &O,
        store: &PairStore,
        slot: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
        label: f64,
    ) -> f64 {
        let (u, v) = store.pairs[slot];
        if cfg.pin_identical && u == v {
            return 1.0;
        }
        let [o1, o2, i1, i2] = self.dims[slot];
        let out = op.term_slots(
            &self.out_entries[self.out_offsets[slot]..self.out_offsets[slot + 1]],
            o1 as usize,
            o2 as usize,
            prev,
            scratch,
        );
        let inn = op.term_slots(
            &self.in_entries[self.in_offsets[slot]..self.in_offsets[slot + 1]],
            i1 as usize,
            i2 as usize,
            prev,
            scratch,
        );
        let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
        // Scores are mathematically confined to [0, 1]; clamp floating
        // drift (identically to `pair_update`).
        score.clamp(0.0, 1.0)
    }
}

/// Borrowed views of every [`PairDepCsr`] column, for serialization.
pub(crate) struct DepRawParts<'a> {
    pub(crate) out_offsets: &'a [usize],
    pub(crate) in_offsets: &'a [usize],
    pub(crate) out_entries: &'a [DepEntry],
    pub(crate) in_entries: &'a [DepEntry],
    pub(crate) dims: &'a [[u32; 4]],
    pub(crate) rdep_offsets: &'a [usize],
    pub(crate) rdeps: &'a [u32],
}

/// Validates a deserialized offset column: length `n + 1`, starts at 0,
/// non-decreasing, ends exactly at `terminal`.
fn check_offsets(name: &str, offsets: &[usize], n: usize, terminal: usize) -> Result<(), String> {
    if offsets.len() != n + 1 {
        return Err(format!(
            "{name} has {} entries, expected {}",
            offsets.len(),
            n + 1
        ));
    }
    if offsets[0] != 0 {
        return Err(format!("{name} must start at 0, found {}", offsets[0]));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{name} is not non-decreasing"));
    }
    if offsets[n] != terminal {
        return Err(format!(
            "{name} ends at {}, entry array has {terminal}",
            offsets[n]
        ));
    }
    Ok(())
}

/// Validates deserialized dependency entries: every non-constant entry's
/// score slot must be in range (constants carry [`DepEntry::CONST`]).
fn check_entry_slots(name: &str, entries: &[DepEntry], n_slots: usize) -> Result<(), String> {
    for e in entries {
        if e.slot != DepEntry::CONST && e.slot as usize >= n_slots {
            return Err(format!(
                "{name} references slot {} out of range ({n_slots} slots)",
                e.slot
            ));
        }
    }
    Ok(())
}

/// The dependency lists of one **u-row shard** of the candidate store —
/// the slots `base..base + len` — built transiently for a single sweep of
/// the sharded driver ([`super::shards`]) and dropped before the next
/// shard is touched, so peak resident CSR memory is one shard's worth.
///
/// Entries are produced by the same [`push_direction`] pass as
/// [`PairDepCsr::build`], and [`eval_slot`](Self::eval_slot) is the same
/// arithmetic as [`PairDepCsr::eval_slot`], so evaluating a slot through a
/// `ShardCsr` is bitwise identical to evaluating it through the full CSR.
/// No reverse CSR is materialized: the sharded driver schedules by
/// scanning each slot's forward entries against the previous iteration's
/// changed-slot frontier instead (the boundary exchange).
pub(crate) struct ShardCsr {
    repr: ShardRepr,
}

/// Where a [`ShardCsr`]'s columns live.
enum ShardRepr {
    /// Freshly built, columns on the heap.
    Owned(OwnedShardCsr),
    /// Backed by a retained spill mapping ([`MappedShardCsr`]),
    /// shared with the session's spill cache.
    Mapped(std::sync::Arc<MappedShardCsr>),
}

struct OwnedShardCsr {
    /// First global slot of the shard.
    base: usize,
    /// Local slot → range of `out_entries` (length `len + 1`).
    out_offsets: Vec<usize>,
    /// Local slot → range of `in_entries` (length `len + 1`).
    in_offsets: Vec<usize>,
    out_entries: Vec<DepEntry>,
    in_entries: Vec<DepEntry>,
    /// Local slot → `[|N⁺(u)|, |N⁺(v)|, |N⁻(u)|, |N⁻(v)|]`.
    dims: Vec<[u32; 4]>,
}

/// Borrowed view of one shard's CSR columns — the common shape both
/// backings lower to, so evaluation is one code path (and therefore
/// bitwise identical) regardless of where the bytes live.
#[derive(Clone, Copy)]
struct CsrCols<'a> {
    base: usize,
    out_offsets: &'a [usize],
    in_offsets: &'a [usize],
    out_entries: &'a [DepEntry],
    in_entries: &'a [DepEntry],
    dims: &'a [[u32; 4]],
}

impl ShardCsr {
    #[inline]
    fn cols(&self) -> CsrCols<'_> {
        match &self.repr {
            ShardRepr::Owned(o) => CsrCols {
                base: o.base,
                out_offsets: &o.out_offsets,
                in_offsets: &o.in_offsets,
                out_entries: &o.out_entries,
                in_entries: &o.in_entries,
                dims: &o.dims,
            },
            ShardRepr::Mapped(m) => m.cols(),
        }
    }

    /// Wraps a retained spill mapping (shared with the spill cache).
    pub(crate) fn from_mapped(m: std::sync::Arc<MappedShardCsr>) -> Self {
        Self {
            repr: ShardRepr::Mapped(m),
        }
    }
    /// Materializes the dependency structure of slots `lo..hi` of `store`
    /// under the session's evaluation context.
    pub(crate) fn build<O: Operator>(
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
        lo: usize,
        hi: usize,
    ) -> Self {
        debug_assert!(lo <= hi && hi <= store.len());
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let len = hi - lo;
        let mut out_offsets = Vec::with_capacity(len + 1);
        let mut in_offsets = Vec::with_capacity(len + 1);
        let mut out_entries = Vec::new();
        let mut in_entries = Vec::new();
        let mut dims = Vec::with_capacity(len);
        out_offsets.push(0);
        in_offsets.push(0);
        let mut const_buf = Vec::new();
        for &(u, v) in &store.pairs[lo..hi] {
            let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
            push_direction(
                &mut out_entries,
                s1,
                s2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            out_offsets.push(out_entries.len());
            let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
            push_direction(
                &mut in_entries,
                t1,
                t2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            in_offsets.push(in_entries.len());
            dims.push([
                s1.len() as u32,
                s2.len() as u32,
                t1.len() as u32,
                t2.len() as u32,
            ]);
        }
        Self {
            repr: ShardRepr::Owned(OwnedShardCsr {
                base: lo,
                out_offsets,
                in_offsets,
                out_entries,
                in_entries,
                dims,
            }),
        }
    }

    /// Both directions' dependency entries of a **global** slot.
    #[inline]
    pub(crate) fn deps_of(&self, slot: usize) -> impl Iterator<Item = &DepEntry> {
        let c = self.cols();
        let local = slot - c.base;
        c.out_entries[c.out_offsets[local]..c.out_offsets[local + 1]]
            .iter()
            .chain(&c.in_entries[c.in_offsets[local]..c.in_offsets[local + 1]])
    }

    /// Resident column footprint in bytes (for a mapped shard, the
    /// page-cache-resident spill bytes the columns view).
    pub(crate) fn bytes(&self) -> usize {
        let c = self.cols();
        std::mem::size_of_val(c.out_entries)
            + std::mem::size_of_val(c.in_entries)
            + std::mem::size_of_val(c.out_offsets)
            + std::mem::size_of_val(c.in_offsets)
            + std::mem::size_of_val(c.dims)
    }

    /// Equation 3 for one **global** slot of the shard — bitwise identical
    /// to [`PairDepCsr::eval_slot`] on the same inputs (same entries, same
    /// arithmetic).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_slot<O: Operator>(
        &self,
        cfg: &FsimConfig,
        op: &O,
        store: &PairStore,
        slot: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
        label: f64,
    ) -> f64 {
        let (u, v) = store.pairs[slot];
        if cfg.pin_identical && u == v {
            return 1.0;
        }
        let c = self.cols();
        let local = slot - c.base;
        let [o1, o2, i1, i2] = c.dims[local];
        let out = op.term_slots(
            &c.out_entries[c.out_offsets[local]..c.out_offsets[local + 1]],
            o1 as usize,
            o2 as usize,
            prev,
            scratch,
        );
        let inn = op.term_slots(
            &c.in_entries[c.in_offsets[local]..c.in_offsets[local + 1]],
            i1 as usize,
            i2 as usize,
            prev,
            scratch,
        );
        let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
        // Scores are mathematically confined to [0, 1]; clamp floating
        // drift (identically to `pair_update` / `PairDepCsr::eval_slot`).
        score.clamp(0.0, 1.0)
    }

    /// Writes this shard's dependency lists to `path` as a one-section
    /// `FSNP` spill file (atomic temp-and-rename, FNV-1a checksummed),
    /// so later sweeps re-map the lists instead of re-deriving them.
    pub(crate) fn write_spill(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        use fsim_snapshot::writer::{put_usize, SnapshotBuilder};
        let c = self.cols();
        let mut b = SnapshotBuilder::new();
        let buf = b.section(SPILL_SECTION);
        put_usize(buf, c.base);
        put_usize(buf, c.dims.len());
        fsim_snapshot::cursor::put_usize_slice(buf, c.out_offsets);
        fsim_snapshot::cursor::put_usize_slice(buf, c.in_offsets);
        put_dep_entries(buf, c.out_entries);
        put_dep_entries(buf, c.in_entries);
        put_usize(buf, c.dims.len());
        for d in c.dims {
            for &v in d {
                fsim_snapshot::writer::put_u32(buf, v);
            }
        }
        b.write_atomic(path)
    }
}

/// A shard spill file retained as a live mapping. [`MappedShardCsr::map`]
/// opens, checksums and structurally validates the file exactly once;
/// the session's spill cache then keeps the result across sweeps, so a
/// warm sweep reborrows the CSR columns instead of re-reading,
/// re-checksumming and re-decoding the file (the cost that previously
/// made spilled sweeps slower than rebuilding).
///
/// The small columns (offsets, dims) are decoded into owned buffers at
/// map time; the dependency-entry columns — the bulk of the bytes — are
/// reborrowed in place from the mapping on little-endian targets, where
/// the wire format (LE `u32`/`f32` words, 16 bytes per entry) coincides
/// with `repr(C)` [`DepEntry`]'s in-memory layout.
pub(crate) struct MappedShardCsr {
    /// Owns the mapping (or fallback read buffer) the `Raw` entry
    /// columns point into; never touched again after `map` returns.
    _file: fsim_snapshot::SnapshotFile,
    base: usize,
    out_offsets: Vec<usize>,
    in_offsets: Vec<usize>,
    out_entries: EntryCol,
    in_entries: EntryCol,
    dims: Vec<[u32; 4]>,
}

// SAFETY: the `Raw` columns point into `_file`'s buffer, which is
// owned by this same struct, read-only for its whole life and freed
// only on drop — sharing `&self` across the parallel sweep's threads
// is reads of immutable memory.
unsafe impl Send for MappedShardCsr {}
// SAFETY: as above — every access path is `&self` reads.
unsafe impl Sync for MappedShardCsr {}

/// One dependency-entry column of a retained spill.
enum EntryCol {
    /// Reborrowed in place from the mapping (little-endian targets
    /// whose section bytes landed `DepEntry`-aligned).
    #[cfg(target_endian = "little")]
    Raw { ptr: *const DepEntry, len: usize },
    /// Decoded copy — big-endian targets, or an unaligned column.
    Owned(Vec<DepEntry>),
}

impl EntryCol {
    #[inline]
    fn as_slice(&self) -> &[DepEntry] {
        match self {
            #[cfg(target_endian = "little")]
            // SAFETY: `ptr`/`len` were carved out of the owning
            // `MappedShardCsr`'s `_file` buffer by `entry_col`, which
            // proved alignment and `len * 16` bytes in bounds; the
            // buffer is immutable and outlives `self`, and every
            // 16-byte pattern is a valid `DepEntry` (plain `u32`s and
            // an `f32` accepting all bit patterns).
            EntryCol::Raw { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            EntryCol::Owned(v) => v,
        }
    }

    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// Reads one entry column off `cur`: zero-copy where the layout
/// allows, decoded otherwise.
fn entry_col(cur: &mut fsim_snapshot::Cursor<'_>) -> Result<EntryCol, SnapshotError> {
    #[cfg(target_endian = "little")]
    {
        let len = cur.checked_len(std::mem::size_of::<DepEntry>())?;
        let raw = cur.take(len * std::mem::size_of::<DepEntry>())?;
        if (raw.as_ptr() as usize) % std::mem::align_of::<DepEntry>() == 0 {
            return Ok(EntryCol::Raw {
                ptr: raw.as_ptr().cast(),
                len,
            });
        }
        // Sections are 8-byte aligned and every preceding field is a
        // multiple of 8 bytes, so this fallback should be unreachable;
        // decoding the already-taken bytes keeps it correct anyway.
        let mut entries = Vec::with_capacity(len);
        for c in raw.chunks_exact(std::mem::size_of::<DepEntry>()) {
            entries.push(DepEntry {
                i: u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
                j: u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
                slot: u32::from_le_bytes(c[8..12].try_into().expect("4 bytes")),
                cval: f32::from_bits(u32::from_le_bytes(c[12..16].try_into().expect("4 bytes"))),
            });
        }
        Ok(EntryCol::Owned(entries))
    }
    #[cfg(not(target_endian = "little"))]
    Ok(EntryCol::Owned(read_dep_entries(cur)?))
}

impl MappedShardCsr {
    /// Opens and validates the spill at `path`, verifying it covers
    /// exactly the slot range `lo..hi` of the current plan and that
    /// every offset column is structurally sound — a stale or
    /// mismatched spill returns an error (the caller rebuilds) rather
    /// than evaluating garbage. The validated mapping is the returned
    /// value's backing store: drop it last.
    pub(crate) fn map(
        path: &std::path::Path,
        lo: usize,
        hi: usize,
    ) -> Result<MappedShardCsr, SnapshotError> {
        let file = fsim_snapshot::SnapshotFile::open(path, SPILL_KNOWN)?;
        let mut cur = fsim_snapshot::Cursor::new("shard-csr", file.section(SPILL_SECTION)?);
        let base = cur.usize64()?;
        let len = cur.usize64()?;
        let out_offsets = cur.usize_vec()?;
        let in_offsets = cur.usize_vec()?;
        let out_entries = entry_col(&mut cur)?;
        let in_entries = entry_col(&mut cur)?;
        let dims_len = cur.checked_len(16)?;
        let mut dims = Vec::with_capacity(dims_len);
        for _ in 0..dims_len {
            dims.push([cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?]);
        }
        cur.finish()?;
        let malformed = |detail: String| SnapshotError::Malformed {
            section: "shard-csr",
            detail,
        };
        if base != lo || len != hi - lo {
            return Err(malformed(format!(
                "spill covers slots {base}..{}, plan wants {lo}..{hi}",
                base + len
            )));
        }
        if dims.len() != len {
            return Err(malformed(format!(
                "{} dim rows for {len} slots",
                dims.len()
            )));
        }
        check_offsets("out_offsets", &out_offsets, len, out_entries.len())
            .and_then(|()| check_offsets("in_offsets", &in_offsets, len, in_entries.len()))
            .map_err(malformed)?;
        Ok(MappedShardCsr {
            _file: file,
            base,
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
        })
    }

    /// Whether this mapping still describes the plan range `lo..hi`.
    pub(crate) fn covers(&self, lo: usize, hi: usize) -> bool {
        self.base == lo && self.dims.len() == hi - lo
    }

    #[inline]
    fn cols(&self) -> CsrCols<'_> {
        CsrCols {
            base: self.base,
            out_offsets: &self.out_offsets,
            in_offsets: &self.in_offsets,
            out_entries: self.out_entries.as_slice(),
            in_entries: self.in_entries.as_slice(),
            dims: &self.dims,
        }
    }
}

/// The single section id of a shard spill file.
const SPILL_SECTION: u32 = 1;
/// Known-section registry for spill files.
const SPILL_KNOWN: &[(u32, &str)] = &[(SPILL_SECTION, "shard-csr")];

/// Encodes a [`DepEntry`] slice: count, then 16 bytes per entry
/// (`i`, `j`, `slot` as LE `u32`, `cval` as LE `f32` bits).
pub(crate) fn put_dep_entries(buf: &mut Vec<u8>, entries: &[DepEntry]) {
    fsim_snapshot::writer::put_usize(buf, entries.len());
    for e in entries {
        buf.extend_from_slice(&e.i.to_le_bytes());
        buf.extend_from_slice(&e.j.to_le_bytes());
        buf.extend_from_slice(&e.slot.to_le_bytes());
        buf.extend_from_slice(&e.cval.to_bits().to_le_bytes());
    }
}

/// Decodes a [`put_dep_entries`] slice with a bounds-proven count.
pub(crate) fn read_dep_entries(
    cur: &mut fsim_snapshot::Cursor<'_>,
) -> Result<Vec<DepEntry>, SnapshotError> {
    let checked_n = cur.checked_len(16)?;
    let raw = cur.take(checked_n * 16)?;
    Ok(raw
        .chunks_exact(16)
        .map(|c| DepEntry {
            i: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            j: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
            slot: u32::from_le_bytes([c[8], c[9], c[10], c[11]]),
            cval: f32::from_bits(u32::from_le_bytes([c[12], c[13], c[14], c[15]])),
        })
        .collect())
}

/// Reverse CSR by counting sort: dependents of each source slot, in
/// ascending dependent order (deterministic — the scheduler's worklists
/// are order-insensitive, but determinism keeps debugging sane).
fn build_reverse(
    n: usize,
    out_offsets: &[usize],
    out_entries: &[DepEntry],
    in_offsets: &[usize],
    in_entries: &[DepEntry],
) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n + 1];
    for e in out_entries.iter().chain(in_entries) {
        if e.slot != DepEntry::CONST {
            counts[e.slot as usize + 1] += 1;
        }
    }
    for k in 1..=n {
        counts[k] += counts[k - 1];
    }
    let rdep_offsets = counts.clone();
    let mut cursor = counts;
    cursor.pop();
    let mut rdeps = vec![0u32; *rdep_offsets.last().unwrap_or(&0)];
    for slot in 0..n {
        let slot_entries = out_entries[out_offsets[slot]..out_offsets[slot + 1]]
            .iter()
            .chain(&in_entries[in_offsets[slot]..in_offsets[slot + 1]]);
        for e in slot_entries {
            if e.slot != DepEntry::CONST {
                let src = e.slot as usize;
                rdeps[cursor[src]] = slot as u32;
                cursor[src] += 1;
            }
        }
    }
    (rdep_offsets, rdeps)
}

/// Appends one direction's dependency list for a pair: eligible neighbor
/// pairs in `(i, j)` order, resolved to slots or fallback constants.
/// Zero-valued constants are omitted (they cannot influence any operator).
///
/// For operators that only read eligible pairs (the variant operators),
/// each row group is **partitioned**: slot-backed entries first (still in
/// `j` order, hence ascending slot — store rows are `v`-sorted), fallback
/// constants after, buffered through `const_buf`. The kernels' row
/// reductions are order-independent within a row (max / deterministic
/// matcher sort), so the partition cannot change any bit; what it buys is
/// a branch-free vectorizable prefix of pure score-buffer loads per row.
/// Operators that read ineligible pairs ([`SimRankOp`] — an
/// order-sensitive *sum* keyed by logical position) keep the raw
/// interleaved `(i, j)` order.
///
/// When `fold_consts` is set ([`Operator::fold_const_rows`]), the
/// buffered constant run of each row is collapsed to the single entry
/// attaining the maximum constant (first winner on ties — deterministic,
/// so repaired and fresh builds agree entry for entry). The fold is
/// pre-computing the only thing a per-row max can ever extract from the
/// run; `f32` maxima are order-insensitive and exact under the `f64`
/// widening, so evaluation stays bitwise identical while the row shrinks
/// to its slot-backed prefix plus one bias entry.
///
/// [`SimRankOp`]: crate::operators::SimRankOp
#[allow(clippy::too_many_arguments)]
fn push_direction(
    entries: &mut Vec<DepEntry>,
    s1: &[fsim_graph::NodeId],
    s2: &[fsim_graph::NodeId],
    ctx: &OpCtx<'_>,
    store: &PairStore,
    all_pairs: bool,
    fold_consts: bool,
    const_buf: &mut Vec<DepEntry>,
) {
    for (i, &x) in s1.iter().enumerate() {
        const_buf.clear();
        for (j, &y) in s2.iter().enumerate() {
            if !all_pairs && !ctx.eligible(x, y) {
                continue;
            }
            match store.resolve(x, y) {
                PairRef::Slot(s) => entries.push(DepEntry {
                    i: i as u32,
                    j: j as u32,
                    slot: s as u32,
                    cval: 0.0,
                }),
                PairRef::Absent(c) => {
                    if c != 0.0 {
                        let e = DepEntry {
                            i: i as u32,
                            j: j as u32,
                            slot: DepEntry::CONST,
                            cval: c as f32,
                        };
                        if all_pairs {
                            entries.push(e);
                        } else {
                            const_buf.push(e);
                        }
                    }
                }
            }
        }
        if fold_consts && const_buf.len() > 1 {
            let mut best = const_buf[0];
            for e in &const_buf[1..] {
                if e.cval > best.cval {
                    best = *e;
                }
            }
            entries.push(best);
            const_buf.clear();
        } else {
            entries.append(const_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FsimConfig, Variant};
    use crate::operators::VariantOp;
    use fsim_graph::graph_from_parts;
    use fsim_labels::LabelFn;

    fn setup() -> (Graph, Graph, FsimConfig) {
        let g1 = graph_from_parts(&["a", "b", "a"], &[(0, 1), (1, 2), (2, 0)]);
        let g2 = graph_from_parts(&["a", "b", "b", "a"], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
        (g1, g2, cfg)
    }

    #[test]
    fn eval_slot_matches_pair_update_bitwise() {
        let (g1raw, g2raw, base) = setup();
        for theta in [0.0, 1.0] {
            let cfg = base.clone().theta(theta);
            let aligned = super::super::session::AlignedLabels::new(&g1raw, &g2raw);
            let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
            let ctx = OpCtx {
                labels1: &aligned.labels1,
                labels2: &aligned.labels2,
                label_eval: &eval,
                theta: cfg.theta,
            };
            let op = VariantOp::new(cfg.variant);
            let store = crate::candidates::enumerate_candidates(&g1raw, &g2raw, &ctx, &cfg, &op);
            let csr = PairDepCsr::build(&g1raw, &g2raw, &ctx, &store, &op);
            // Arbitrary (deterministic) score buffer.
            let scores: Vec<f64> = (0..store.len()).map(|i| (i % 13) as f64 / 13.0).collect();
            let view = store.view(&scores);
            let mut scratch = OpScratch::new();
            for (slot, &(u, v)) in store.pairs.iter().enumerate() {
                let direct = super::super::iterate::pair_update(
                    &g1raw,
                    &g2raw,
                    &ctx,
                    &cfg,
                    &op,
                    u,
                    v,
                    &view,
                    &mut scratch,
                );
                let label = ctx.label_sim(u, v);
                let via_csr = csr.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                assert_eq!(
                    direct.to_bits(),
                    via_csr.to_bits(),
                    "theta={theta} slot {slot} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn shard_csr_matches_full_csr_bitwise() {
        let (g1, g2, base) = setup();
        for theta in [0.0, 1.0] {
            let cfg = base.clone().theta(theta);
            let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
            let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
            let ctx = OpCtx {
                labels1: &aligned.labels1,
                labels2: &aligned.labels2,
                label_eval: &eval,
                theta: cfg.theta,
            };
            let op = VariantOp::new(cfg.variant);
            let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
            let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
            let scores: Vec<f64> = (0..store.len()).map(|i| (i % 7) as f64 / 7.0).collect();
            let mut scratch = OpScratch::new();
            // Split the store anywhere (including degenerate empty shards)
            // and check every slot evaluates identically through its shard.
            for cut in [0, store.len() / 2, store.len()] {
                for (lo, hi) in [(0, cut), (cut, store.len())] {
                    let shard = ShardCsr::build(&g1, &g2, &ctx, &store, &op, lo, hi);
                    assert!(shard.bytes() <= csr.bytes());
                    for slot in lo..hi {
                        let label = ctx.label_sim(store.pairs[slot].0, store.pairs[slot].1);
                        let full =
                            csr.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                        let via_shard =
                            shard.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                        assert_eq!(
                            full.to_bits(),
                            via_shard.to_bits(),
                            "theta={theta} slot {slot}"
                        );
                        // The shard's forward entries name exactly the
                        // dependencies the full CSR holds for the slot.
                        let full_deps: Vec<DepEntry> = csr.out_entries
                            [csr.out_offsets[slot]..csr.out_offsets[slot + 1]]
                            .iter()
                            .chain(&csr.in_entries[csr.in_offsets[slot]..csr.in_offsets[slot + 1]])
                            .copied()
                            .collect();
                        let shard_deps: Vec<DepEntry> = shard.deps_of(slot).copied().collect();
                        assert_eq!(full_deps, shard_deps, "theta={theta} slot {slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn mapped_spill_matches_the_built_shard_bitwise() {
        let (g1, g2, base) = setup();
        let cfg = base.clone().theta(0.0);
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        let dir = std::env::temp_dir().join(format!("fsim-deps-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.fsnp");
        let (lo, hi) = (0, store.len());
        let built = ShardCsr::build(&g1, &g2, &ctx, &store, &op, lo, hi);
        built.write_spill(&path).unwrap();
        let mapped = ShardCsr::from_mapped(std::sync::Arc::new(
            MappedShardCsr::map(&path, lo, hi).unwrap(),
        ));
        let scores: Vec<f64> = (0..store.len()).map(|i| (i % 5) as f64 / 5.0).collect();
        let mut scratch = OpScratch::new();
        for slot in lo..hi {
            let label = ctx.label_sim(store.pairs[slot].0, store.pairs[slot].1);
            let a = built.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
            let b = mapped.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
            assert_eq!(a.to_bits(), b.to_bits(), "slot {slot}");
            let da: Vec<DepEntry> = built.deps_of(slot).copied().collect();
            let db: Vec<DepEntry> = mapped.deps_of(slot).copied().collect();
            assert_eq!(da, db, "slot {slot}");
        }
        assert_eq!(built.bytes(), mapped.bytes());
        // A mapping is pinned to its plan range: a range mismatch is a
        // structured error (the caller rebuilds), never garbage.
        assert!(MappedShardCsr::map(&path, lo, hi + 1).is_err());
        assert!(MappedShardCsr::map(&path, 1, hi).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repaired_with_identity_remap_matches_fresh_build() {
        let (g1, g2, cfg) = setup();
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
        let identity: Vec<u32> = (0..store.len() as u32).collect();
        // Edit the graph (add an edge), mark the touched rows dirty, and
        // check the repair equals a fresh build on the edited graph.
        let g1b = g1.with_edits(&[(0, 2)], &[], &[]);
        let dirty: Vec<bool> = store.pairs.iter().map(|&(u, _)| u == 0 || u == 2).collect();
        let repaired = csr.repaired(&g1b, &g2, &ctx, &store, &op, &identity, &identity, &dirty);
        let fresh = PairDepCsr::build(&g1b, &g2, &ctx, &store, &op);
        assert_eq!(repaired, fresh);
        // All-clean repair reproduces the original bit for bit.
        let clean = vec![false; store.len()];
        let same = csr.repaired(&g1, &g2, &ctx, &store, &op, &identity, &identity, &clean);
        assert_eq!(same, csr);
    }

    #[test]
    fn reverse_csr_covers_every_slot_dependency() {
        let (g1, g2, cfg) = setup();
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
        for slot in 0..store.len() {
            let entries = csr.out_entries[csr.out_offsets[slot]..csr.out_offsets[slot + 1]]
                .iter()
                .chain(&csr.in_entries[csr.in_offsets[slot]..csr.in_offsets[slot + 1]]);
            for e in entries {
                if e.slot != DepEntry::CONST {
                    let src = e.slot as usize;
                    let deps = &csr.rdeps[csr.rdep_offsets[src]..csr.rdep_offsets[src + 1]];
                    assert!(
                        deps.contains(&(slot as u32)),
                        "slot {slot} missing from dependents of {src}"
                    );
                }
            }
        }
    }
}
