//! The pair-dependency CSR: the iteration-invariant structure of
//! Equation 3, materialized once per candidate store.
//!
//! The inputs a pair `(u, v)`'s update reads — which neighbor pairs
//! `(x, y)` with `L(x, y) ≥ θ` its mapping operators consult, which score
//! slot (or pruning-fallback constant) each of those resolves to, and the
//! pair's own label term — are fixed across iterations. [`PairDepCsr`]
//! flattens all of it into contiguous arrays at session-prepare time, so
//! the hot loop is pure index arithmetic: no `PairIndex` lookups, no
//! `ctx.eligible` re-filtering, no hashed fallback probes.
//!
//! The reverse CSR (for each slot, the slots whose update reads it) drives
//! **dirty-pair scheduling**: iteration `k` re-evaluates a slot only if one
//! of its dependencies changed in iteration `k−1`. Because the Jacobi
//! update is a pure function of its inputs, a slot with unchanged inputs
//! reproduces its previous score bit for bit — so sparse iteration is
//! bitwise identical to the full sweep (`tests/delta_convergence.rs`
//! property-checks this across variants, θ, pruning and thread counts).

use crate::config::FsimConfig;
use crate::operators::{DepEntry, OpCtx, OpScratch, Operator};
use crate::store::{PairRef, PairStore};
use fsim_graph::Graph;

/// Rough per-entry footprint in bytes (one [`DepEntry`] plus its reverse
/// edge), used with [`crate::candidates::estimated_dep_entries`] to check
/// the CSR against the configured memory budget before building.
pub(crate) const BYTES_PER_ENTRY: u128 = (std::mem::size_of::<DepEntry>() + 4) as u128;

/// Rough per-slot footprint in bytes: offsets into three entry arrays plus
/// the stored neighborhood dimensions.
pub(crate) const BYTES_PER_SLOT: u128 = 48;

/// The flattened, θ-prefiltered dependency structure of a candidate store
/// (see the module docs). Valid exactly as long as the store it was built
/// from: the entries depend on the candidate set, the eligibility
/// constraint and the pruning fallback — all of which change only when the
/// store is rebuilt.
#[derive(Debug, PartialEq)]
pub(crate) struct PairDepCsr {
    /// Slot → range of `out_entries` (length `n + 1`).
    out_offsets: Vec<usize>,
    /// Slot → range of `in_entries` (length `n + 1`).
    in_offsets: Vec<usize>,
    /// Out-neighbor-pair dependencies, `(i, j)`-sorted per slot.
    out_entries: Vec<DepEntry>,
    /// In-neighbor-pair dependencies, `(i, j)`-sorted per slot.
    in_entries: Vec<DepEntry>,
    /// Slot → `[|N⁺(u)|, |N⁺(v)|, |N⁻(u)|, |N⁻(v)|]` (drive `Ω` / vacuity).
    dims: Vec<[u32; 4]>,
    /// Slot → range of `rdeps` (length `n + 1`).
    rdep_offsets: Vec<usize>,
    /// Reverse CSR: for each slot, the slots whose update reads it. May
    /// contain duplicates (a source feeding both directions of one pair);
    /// the scheduler's epoch marks deduplicate for free.
    rdeps: Vec<u32>,
}

impl PairDepCsr {
    /// Materializes the dependency structure of `store` under the session's
    /// evaluation context.
    pub(crate) fn build<O: Operator>(
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
    ) -> Self {
        let n = store.len();
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut out_entries = Vec::new();
        let mut in_entries = Vec::new();
        let mut dims = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        let mut const_buf = Vec::new();
        for &(u, v) in &store.pairs {
            let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
            push_direction(
                &mut out_entries,
                s1,
                s2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            out_offsets.push(out_entries.len());
            let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
            push_direction(
                &mut in_entries,
                t1,
                t2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            in_offsets.push(in_entries.len());
            dims.push([
                s1.len() as u32,
                s2.len() as u32,
                t1.len() as u32,
                t2.len() as u32,
            ]);
        }

        let (rdep_offsets, rdeps) =
            build_reverse(n, &out_offsets, &out_entries, &in_offsets, &in_entries);

        Self {
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
            rdep_offsets,
            rdeps,
        }
    }

    /// Incrementally repairs the CSR after a graph edit: slots outside
    /// `entry_dirty` copy their old dependency lists verbatim (with slots
    /// renumbered through `old_to_new`); dirty slots — and pairs that just
    /// entered the store — re-derive theirs from the edited graphs. The
    /// expensive per-entry work (eligibility filtering, pair resolution,
    /// fallback probing) is therefore proportional to the edit's dirty
    /// frontier, not to the store; only the reverse-CSR counting sort and
    /// the entry copy remain `O(total entries)` — branch-free linear
    /// passes.
    ///
    /// `store` is the repaired store; `old_to_new` / `new_to_old` come
    /// from [`crate::candidates::repair_candidates`]; `entry_dirty` is
    /// indexed by *new* slot and must cover every slot whose dependency
    /// list could have changed (a superset is safe).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn repaired<O: Operator>(
        &self,
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
        old_to_new: &[u32],
        new_to_old: &[u32],
        entry_dirty: &[bool],
    ) -> Self {
        use crate::candidates::NO_SLOT;
        let n = store.len();
        debug_assert_eq!(entry_dirty.len(), n);
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut out_entries = Vec::with_capacity(self.out_entries.len());
        let mut in_entries = Vec::with_capacity(self.in_entries.len());
        let mut dims = Vec::with_capacity(n);
        out_offsets.push(0);
        in_offsets.push(0);
        let copy_range = |dst: &mut Vec<DepEntry>, src: &[DepEntry]| {
            for e in src {
                let mut e = *e;
                if e.slot != DepEntry::CONST {
                    let mapped = old_to_new[e.slot as usize];
                    debug_assert_ne!(
                        mapped, NO_SLOT,
                        "clean slot depends on a removed pair — dirty set too small"
                    );
                    e.slot = mapped;
                }
                dst.push(e);
            }
        };
        let mut const_buf = Vec::new();
        for (slot, &(u, v)) in store.pairs.iter().enumerate() {
            let old_slot = new_to_old[slot];
            if old_slot != NO_SLOT && !entry_dirty[slot] {
                let o = old_slot as usize;
                copy_range(
                    &mut out_entries,
                    &self.out_entries[self.out_offsets[o]..self.out_offsets[o + 1]],
                );
                copy_range(
                    &mut in_entries,
                    &self.in_entries[self.in_offsets[o]..self.in_offsets[o + 1]],
                );
                dims.push(self.dims[o]);
            } else {
                let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
                push_direction(
                    &mut out_entries,
                    s1,
                    s2,
                    ctx,
                    store,
                    all_pairs,
                    fold_consts,
                    &mut const_buf,
                );
                let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
                push_direction(
                    &mut in_entries,
                    t1,
                    t2,
                    ctx,
                    store,
                    all_pairs,
                    fold_consts,
                    &mut const_buf,
                );
                dims.push([
                    s1.len() as u32,
                    s2.len() as u32,
                    t1.len() as u32,
                    t2.len() as u32,
                ]);
            }
            out_offsets.push(out_entries.len());
            in_offsets.push(in_entries.len());
        }
        let (rdep_offsets, rdeps) =
            build_reverse(n, &out_offsets, &out_entries, &in_offsets, &in_entries);
        Self {
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
            rdep_offsets,
            rdeps,
        }
    }

    /// Total dependency entries across both directions (diagnostics).
    pub(crate) fn entry_count(&self) -> usize {
        self.out_entries.len() + self.in_entries.len()
    }

    /// Resident heap footprint in bytes (entries, reverse CSR, offsets,
    /// dims) — the "peak CSR memory" the sharded driver is bounded
    /// against.
    pub(crate) fn bytes(&self) -> usize {
        self.entry_count() * std::mem::size_of::<DepEntry>()
            + self.rdeps.len() * std::mem::size_of::<u32>()
            + (self.out_offsets.len() + self.in_offsets.len() + self.rdep_offsets.len())
                * std::mem::size_of::<usize>()
            + self.dims.len() * std::mem::size_of::<[u32; 4]>()
    }

    /// Slot → dependents offsets (for the dirty scheduler).
    pub(crate) fn rdep_offsets(&self) -> &[usize] {
        &self.rdep_offsets
    }

    /// Concatenated dependents (for the dirty scheduler).
    pub(crate) fn rdeps(&self) -> &[u32] {
        &self.rdeps
    }

    /// Equation 3 for one slot, evaluated from the prepared dependency
    /// lists and the cached label term — bitwise identical to
    /// [`pair_update`](super::iterate::pair_update) on the same inputs.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_slot<O: Operator>(
        &self,
        cfg: &FsimConfig,
        op: &O,
        store: &PairStore,
        slot: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
        label: f64,
    ) -> f64 {
        let (u, v) = store.pairs[slot];
        if cfg.pin_identical && u == v {
            return 1.0;
        }
        let [o1, o2, i1, i2] = self.dims[slot];
        let out = op.term_slots(
            &self.out_entries[self.out_offsets[slot]..self.out_offsets[slot + 1]],
            o1 as usize,
            o2 as usize,
            prev,
            scratch,
        );
        let inn = op.term_slots(
            &self.in_entries[self.in_offsets[slot]..self.in_offsets[slot + 1]],
            i1 as usize,
            i2 as usize,
            prev,
            scratch,
        );
        let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
        // Scores are mathematically confined to [0, 1]; clamp floating
        // drift (identically to `pair_update`).
        score.clamp(0.0, 1.0)
    }
}

/// The dependency lists of one **u-row shard** of the candidate store —
/// the slots `base..base + len` — built transiently for a single sweep of
/// the sharded driver ([`super::shards`]) and dropped before the next
/// shard is touched, so peak resident CSR memory is one shard's worth.
///
/// Entries are produced by the same [`push_direction`] pass as
/// [`PairDepCsr::build`], and [`eval_slot`](Self::eval_slot) is the same
/// arithmetic as [`PairDepCsr::eval_slot`], so evaluating a slot through a
/// `ShardCsr` is bitwise identical to evaluating it through the full CSR.
/// No reverse CSR is materialized: the sharded driver schedules by
/// scanning each slot's forward entries against the previous iteration's
/// changed-slot frontier instead (the boundary exchange).
pub(crate) struct ShardCsr {
    /// First global slot of the shard.
    base: usize,
    /// Local slot → range of `out_entries` (length `len + 1`).
    out_offsets: Vec<usize>,
    /// Local slot → range of `in_entries` (length `len + 1`).
    in_offsets: Vec<usize>,
    out_entries: Vec<DepEntry>,
    in_entries: Vec<DepEntry>,
    /// Local slot → `[|N⁺(u)|, |N⁺(v)|, |N⁻(u)|, |N⁻(v)|]`.
    dims: Vec<[u32; 4]>,
}

impl ShardCsr {
    /// Materializes the dependency structure of slots `lo..hi` of `store`
    /// under the session's evaluation context.
    pub(crate) fn build<O: Operator>(
        g1: &Graph,
        g2: &Graph,
        ctx: &OpCtx<'_>,
        store: &PairStore,
        op: &O,
        lo: usize,
        hi: usize,
    ) -> Self {
        debug_assert!(lo <= hi && hi <= store.len());
        let all_pairs = op.reads_ineligible_pairs();
        let fold_consts = !all_pairs && op.fold_const_rows();
        let len = hi - lo;
        let mut out_offsets = Vec::with_capacity(len + 1);
        let mut in_offsets = Vec::with_capacity(len + 1);
        let mut out_entries = Vec::new();
        let mut in_entries = Vec::new();
        let mut dims = Vec::with_capacity(len);
        out_offsets.push(0);
        in_offsets.push(0);
        let mut const_buf = Vec::new();
        for &(u, v) in &store.pairs[lo..hi] {
            let (s1, s2) = (g1.out_neighbors(u), g2.out_neighbors(v));
            push_direction(
                &mut out_entries,
                s1,
                s2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            out_offsets.push(out_entries.len());
            let (t1, t2) = (g1.in_neighbors(u), g2.in_neighbors(v));
            push_direction(
                &mut in_entries,
                t1,
                t2,
                ctx,
                store,
                all_pairs,
                fold_consts,
                &mut const_buf,
            );
            in_offsets.push(in_entries.len());
            dims.push([
                s1.len() as u32,
                s2.len() as u32,
                t1.len() as u32,
                t2.len() as u32,
            ]);
        }
        Self {
            base: lo,
            out_offsets,
            in_offsets,
            out_entries,
            in_entries,
            dims,
        }
    }

    /// Both directions' dependency entries of a **global** slot.
    #[inline]
    pub(crate) fn deps_of(&self, slot: usize) -> impl Iterator<Item = &DepEntry> {
        let local = slot - self.base;
        self.out_entries[self.out_offsets[local]..self.out_offsets[local + 1]]
            .iter()
            .chain(&self.in_entries[self.in_offsets[local]..self.in_offsets[local + 1]])
    }

    /// Resident heap footprint in bytes.
    pub(crate) fn bytes(&self) -> usize {
        (self.out_entries.len() + self.in_entries.len()) * std::mem::size_of::<DepEntry>()
            + (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<usize>()
            + self.dims.len() * std::mem::size_of::<[u32; 4]>()
    }

    /// Equation 3 for one **global** slot of the shard — bitwise identical
    /// to [`PairDepCsr::eval_slot`] on the same inputs (same entries, same
    /// arithmetic).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn eval_slot<O: Operator>(
        &self,
        cfg: &FsimConfig,
        op: &O,
        store: &PairStore,
        slot: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
        label: f64,
    ) -> f64 {
        let (u, v) = store.pairs[slot];
        if cfg.pin_identical && u == v {
            return 1.0;
        }
        let local = slot - self.base;
        let [o1, o2, i1, i2] = self.dims[local];
        let out = op.term_slots(
            &self.out_entries[self.out_offsets[local]..self.out_offsets[local + 1]],
            o1 as usize,
            o2 as usize,
            prev,
            scratch,
        );
        let inn = op.term_slots(
            &self.in_entries[self.in_offsets[local]..self.in_offsets[local + 1]],
            i1 as usize,
            i2 as usize,
            prev,
            scratch,
        );
        let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
        // Scores are mathematically confined to [0, 1]; clamp floating
        // drift (identically to `pair_update` / `PairDepCsr::eval_slot`).
        score.clamp(0.0, 1.0)
    }
}

/// Reverse CSR by counting sort: dependents of each source slot, in
/// ascending dependent order (deterministic — the scheduler's worklists
/// are order-insensitive, but determinism keeps debugging sane).
fn build_reverse(
    n: usize,
    out_offsets: &[usize],
    out_entries: &[DepEntry],
    in_offsets: &[usize],
    in_entries: &[DepEntry],
) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n + 1];
    for e in out_entries.iter().chain(in_entries) {
        if e.slot != DepEntry::CONST {
            counts[e.slot as usize + 1] += 1;
        }
    }
    for k in 1..=n {
        counts[k] += counts[k - 1];
    }
    let rdep_offsets = counts.clone();
    let mut cursor = counts;
    cursor.pop();
    let mut rdeps = vec![0u32; *rdep_offsets.last().unwrap_or(&0)];
    for slot in 0..n {
        let slot_entries = out_entries[out_offsets[slot]..out_offsets[slot + 1]]
            .iter()
            .chain(&in_entries[in_offsets[slot]..in_offsets[slot + 1]]);
        for e in slot_entries {
            if e.slot != DepEntry::CONST {
                let src = e.slot as usize;
                rdeps[cursor[src]] = slot as u32;
                cursor[src] += 1;
            }
        }
    }
    (rdep_offsets, rdeps)
}

/// Appends one direction's dependency list for a pair: eligible neighbor
/// pairs in `(i, j)` order, resolved to slots or fallback constants.
/// Zero-valued constants are omitted (they cannot influence any operator).
///
/// For operators that only read eligible pairs (the variant operators),
/// each row group is **partitioned**: slot-backed entries first (still in
/// `j` order, hence ascending slot — store rows are `v`-sorted), fallback
/// constants after, buffered through `const_buf`. The kernels' row
/// reductions are order-independent within a row (max / deterministic
/// matcher sort), so the partition cannot change any bit; what it buys is
/// a branch-free vectorizable prefix of pure score-buffer loads per row.
/// Operators that read ineligible pairs ([`SimRankOp`] — an
/// order-sensitive *sum* keyed by logical position) keep the raw
/// interleaved `(i, j)` order.
///
/// When `fold_consts` is set ([`Operator::fold_const_rows`]), the
/// buffered constant run of each row is collapsed to the single entry
/// attaining the maximum constant (first winner on ties — deterministic,
/// so repaired and fresh builds agree entry for entry). The fold is
/// pre-computing the only thing a per-row max can ever extract from the
/// run; `f32` maxima are order-insensitive and exact under the `f64`
/// widening, so evaluation stays bitwise identical while the row shrinks
/// to its slot-backed prefix plus one bias entry.
///
/// [`SimRankOp`]: crate::operators::SimRankOp
#[allow(clippy::too_many_arguments)]
fn push_direction(
    entries: &mut Vec<DepEntry>,
    s1: &[fsim_graph::NodeId],
    s2: &[fsim_graph::NodeId],
    ctx: &OpCtx<'_>,
    store: &PairStore,
    all_pairs: bool,
    fold_consts: bool,
    const_buf: &mut Vec<DepEntry>,
) {
    for (i, &x) in s1.iter().enumerate() {
        const_buf.clear();
        for (j, &y) in s2.iter().enumerate() {
            if !all_pairs && !ctx.eligible(x, y) {
                continue;
            }
            match store.resolve(x, y) {
                PairRef::Slot(s) => entries.push(DepEntry {
                    i: i as u32,
                    j: j as u32,
                    slot: s as u32,
                    cval: 0.0,
                }),
                PairRef::Absent(c) => {
                    if c != 0.0 {
                        let e = DepEntry {
                            i: i as u32,
                            j: j as u32,
                            slot: DepEntry::CONST,
                            cval: c as f32,
                        };
                        if all_pairs {
                            entries.push(e);
                        } else {
                            const_buf.push(e);
                        }
                    }
                }
            }
        }
        if fold_consts && const_buf.len() > 1 {
            let mut best = const_buf[0];
            for e in &const_buf[1..] {
                if e.cval > best.cval {
                    best = *e;
                }
            }
            entries.push(best);
            const_buf.clear();
        } else {
            entries.append(const_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FsimConfig, Variant};
    use crate::operators::VariantOp;
    use fsim_graph::graph_from_parts;
    use fsim_labels::LabelFn;

    fn setup() -> (Graph, Graph, FsimConfig) {
        let g1 = graph_from_parts(&["a", "b", "a"], &[(0, 1), (1, 2), (2, 0)]);
        let g2 = graph_from_parts(&["a", "b", "b", "a"], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
        (g1, g2, cfg)
    }

    #[test]
    fn eval_slot_matches_pair_update_bitwise() {
        let (g1raw, g2raw, base) = setup();
        for theta in [0.0, 1.0] {
            let cfg = base.clone().theta(theta);
            let aligned = super::super::session::AlignedLabels::new(&g1raw, &g2raw);
            let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
            let ctx = OpCtx {
                labels1: &aligned.labels1,
                labels2: &aligned.labels2,
                label_eval: &eval,
                theta: cfg.theta,
            };
            let op = VariantOp::new(cfg.variant);
            let store = crate::candidates::enumerate_candidates(&g1raw, &g2raw, &ctx, &cfg, &op);
            let csr = PairDepCsr::build(&g1raw, &g2raw, &ctx, &store, &op);
            // Arbitrary (deterministic) score buffer.
            let scores: Vec<f64> = (0..store.len()).map(|i| (i % 13) as f64 / 13.0).collect();
            let view = store.view(&scores);
            let mut scratch = OpScratch::new();
            for (slot, &(u, v)) in store.pairs.iter().enumerate() {
                let direct = super::super::iterate::pair_update(
                    &g1raw,
                    &g2raw,
                    &ctx,
                    &cfg,
                    &op,
                    u,
                    v,
                    &view,
                    &mut scratch,
                );
                let label = ctx.label_sim(u, v);
                let via_csr = csr.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                assert_eq!(
                    direct.to_bits(),
                    via_csr.to_bits(),
                    "theta={theta} slot {slot} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn shard_csr_matches_full_csr_bitwise() {
        let (g1, g2, base) = setup();
        for theta in [0.0, 1.0] {
            let cfg = base.clone().theta(theta);
            let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
            let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
            let ctx = OpCtx {
                labels1: &aligned.labels1,
                labels2: &aligned.labels2,
                label_eval: &eval,
                theta: cfg.theta,
            };
            let op = VariantOp::new(cfg.variant);
            let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
            let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
            let scores: Vec<f64> = (0..store.len()).map(|i| (i % 7) as f64 / 7.0).collect();
            let mut scratch = OpScratch::new();
            // Split the store anywhere (including degenerate empty shards)
            // and check every slot evaluates identically through its shard.
            for cut in [0, store.len() / 2, store.len()] {
                for (lo, hi) in [(0, cut), (cut, store.len())] {
                    let shard = ShardCsr::build(&g1, &g2, &ctx, &store, &op, lo, hi);
                    assert!(shard.bytes() <= csr.bytes());
                    for slot in lo..hi {
                        let label = ctx.label_sim(store.pairs[slot].0, store.pairs[slot].1);
                        let full =
                            csr.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                        let via_shard =
                            shard.eval_slot(&cfg, &op, &store, slot, &scores, &mut scratch, label);
                        assert_eq!(
                            full.to_bits(),
                            via_shard.to_bits(),
                            "theta={theta} slot {slot}"
                        );
                        // The shard's forward entries name exactly the
                        // dependencies the full CSR holds for the slot.
                        let full_deps: Vec<DepEntry> = csr.out_entries
                            [csr.out_offsets[slot]..csr.out_offsets[slot + 1]]
                            .iter()
                            .chain(&csr.in_entries[csr.in_offsets[slot]..csr.in_offsets[slot + 1]])
                            .copied()
                            .collect();
                        let shard_deps: Vec<DepEntry> = shard.deps_of(slot).copied().collect();
                        assert_eq!(full_deps, shard_deps, "theta={theta} slot {slot}");
                    }
                }
            }
        }
    }

    #[test]
    fn repaired_with_identity_remap_matches_fresh_build() {
        let (g1, g2, cfg) = setup();
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
        let identity: Vec<u32> = (0..store.len() as u32).collect();
        // Edit the graph (add an edge), mark the touched rows dirty, and
        // check the repair equals a fresh build on the edited graph.
        let g1b = g1.with_edits(&[(0, 2)], &[], &[]);
        let dirty: Vec<bool> = store.pairs.iter().map(|&(u, _)| u == 0 || u == 2).collect();
        let repaired = csr.repaired(&g1b, &g2, &ctx, &store, &op, &identity, &identity, &dirty);
        let fresh = PairDepCsr::build(&g1b, &g2, &ctx, &store, &op);
        assert_eq!(repaired, fresh);
        // All-clean repair reproduces the original bit for bit.
        let clean = vec![false; store.len()];
        let same = csr.repaired(&g1, &g2, &ctx, &store, &op, &identity, &identity, &clean);
        assert_eq!(same, csr);
    }

    #[test]
    fn reverse_csr_covers_every_slot_dependency() {
        let (g1, g2, cfg) = setup();
        let aligned = super::super::session::AlignedLabels::new(&g1, &g2);
        let eval = super::super::session::build_label_eval(&cfg, &aligned.interner);
        let ctx = OpCtx {
            labels1: &aligned.labels1,
            labels2: &aligned.labels2,
            label_eval: &eval,
            theta: cfg.theta,
        };
        let op = VariantOp::new(cfg.variant);
        let store = crate::candidates::enumerate_candidates(&g1, &g2, &ctx, &cfg, &op);
        let csr = PairDepCsr::build(&g1, &g2, &ctx, &store, &op);
        for slot in 0..store.len() {
            let entries = csr.out_entries[csr.out_offsets[slot]..csr.out_offsets[slot + 1]]
                .iter()
                .chain(&csr.in_entries[csr.in_offsets[slot]..csr.in_offsets[slot + 1]]);
            for e in entries {
                if e.slot != DepEntry::CONST {
                    let src = e.slot as usize;
                    let deps = &csr.rdeps[csr.rdep_offsets[src]..csr.rdep_offsets[src + 1]];
                    assert!(
                        deps.contains(&(slot as u32)),
                        "slot {slot} missing from dependents of {src}"
                    );
                }
            }
        }
    }
}
