//! The persistent parallel runtime of §3.4.
//!
//! The seed implementation spawned a fresh `crossbeam::scope` with a
//! `Mutex<Vec>` work queue on **every iteration** of Algorithm 1 — thread
//! creation and queue locking dominated small and medium worklists. This
//! module replaces it with a worker pool spawned **once per run**: workers
//! live across all iterations, pull disjoint slot ranges via a lock-free
//! atomic cursor, and synchronize with the coordinator through a barrier at
//! each iteration boundary. Per-worker [`OpScratch`]-style state is created
//! once and reused for the whole run.
//!
//! The bitwise sequential ≡ parallel guarantee is preserved: each slot's
//! new score is a pure function of the previous iteration's buffer (which
//! no worker writes), the cursor hands out disjoint write ranges, and the
//! convergence metric is an order-independent max-reduction.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// What a (sequential or parallel) run of the iteration loop reports.
#[derive(Debug, Clone)]
pub(crate) struct IterationOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether `Δ < ε` was reached before the cap.
    pub converged: bool,
    /// The final `Δ = max |FSim^k − FSim^{k−1}|` (∞ if no iteration ran).
    pub final_delta: f64,
    /// Pairs re-evaluated per iteration (`|H|` every iteration for the
    /// full sweep; the dirty-worklist length under delta scheduling).
    pub pairs_evaluated: Vec<usize>,
}

/// A score buffer shared with the worker pool.
///
/// Workers read the *previous* buffer (never written during an iteration)
/// and write disjoint slot ranges of the *current* buffer, so no location
/// is ever accessed mutably by two parties. `UnsafeCell` expresses exactly
/// that hand-verified aliasing discipline; the barrier at each iteration
/// boundary publishes the writes.
struct SharedScores<'a> {
    cells: &'a [UnsafeCell<f64>],
}

// SAFETY: all concurrent access follows the disjoint-range discipline
// documented above; `f64` needs no drop or validity bookkeeping.
unsafe impl Sync for SharedScores<'_> {}

impl<'a> SharedScores<'a> {
    fn new(buf: &'a mut [f64]) -> Self {
        let ptr = buf as *mut [f64] as *const [UnsafeCell<f64>];
        // SAFETY: `UnsafeCell<f64>` is `repr(transparent)` over `f64`, and
        // we hold the unique `&mut` borrow for `'a`.
        Self {
            cells: unsafe { &*ptr },
        }
    }

    /// The buffer as a plain slice.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent writes for the borrow's
    /// lifetime (true for the read buffer within one iteration).
    unsafe fn as_read_slice(&self) -> &[f64] {
        std::slice::from_raw_parts(self.cells.as_ptr() as *const f64, self.cells.len())
    }

    /// Writes one slot.
    ///
    /// # Safety
    /// Caller must be the only writer of `slot` this iteration.
    #[inline]
    unsafe fn write(&self, slot: usize, value: f64) {
        *self.cells[slot].get() = value;
    }

    /// Overwrites the whole buffer from `src`.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent access at all (true for the
    /// coordinator while the workers are parked at a barrier).
    unsafe fn copy_from(&self, src: &[f64]) {
        debug_assert_eq!(src.len(), self.cells.len());
        let dst = std::slice::from_raw_parts_mut(self.cells.as_ptr() as *mut f64, self.cells.len());
        dst.copy_from_slice(src);
    }
}

/// Runs the iteration loop on a worker pool spawned once for the whole
/// run.
///
/// `prev` holds `FSim⁰` on entry and the final scores on exit; `cur` is
/// the same-length double buffer. `make_update` is invoked once per worker
/// to build its stateful update closure `(slot, prev_scores) → new score`
/// (owning scratch buffers for the run's lifetime).
pub(crate) fn run_parallel<U, F>(
    threads: usize,
    max_iters: usize,
    epsilon: f64,
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    make_update: F,
) -> IterationOutcome
where
    F: Fn() -> U + Sync,
    U: FnMut(usize, &[f64]) -> f64,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    debug_assert!(threads >= 2, "parallel runtime needs at least two workers");
    // Each cursor pull should own enough pairs to amortize the atomic, but
    // stay fine-grained enough to balance skewed per-pair costs.
    let chunk = (n / (threads * 8)).max(256);
    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let cursor = AtomicUsize::new(0);
    let read_index = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let deltas: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    std::thread::scope(|scope| {
        for worker_delta in &deltas {
            let buffers = &buffers;
            let cursor = &cursor;
            let read_index = &read_index;
            let stop = &stop;
            let barrier = &barrier;
            let make_update = &make_update;
            scope.spawn(move || {
                let mut update = make_update();
                loop {
                    barrier.wait(); // iteration start (or shutdown)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let r = read_index.load(Ordering::Relaxed);
                    // SAFETY: this iteration only writes `buffers[1 - r]`.
                    let read = unsafe { buffers[r].as_read_slice() };
                    let write = &buffers[1 - r];
                    let mut local_delta = 0.0f64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for slot in start..end {
                            let score = update(slot, read);
                            let d = (score - read[slot]).abs();
                            if d > local_delta {
                                local_delta = d;
                            }
                            // SAFETY: `start..end` ranges from the cursor
                            // are disjoint across workers.
                            unsafe { write.write(slot, score) };
                        }
                    }
                    worker_delta.store(local_delta.to_bits(), Ordering::Relaxed);
                    barrier.wait(); // iteration end
                }
            });
        }

        let mut read = 0usize;
        while iterations < max_iters {
            cursor.store(0, Ordering::Relaxed);
            read_index.store(read, Ordering::Relaxed);
            barrier.wait(); // release workers into the iteration
            barrier.wait(); // wait for every slot to be written
            final_delta = deltas
                .iter()
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0, f64::max);
            iterations += 1;
            read = 1 - read;
            if final_delta < epsilon {
                converged = true;
                break;
            }
        }
        stop.store(true, Ordering::Release);
        barrier.wait(); // release workers into shutdown
    });

    // The last-written buffer alternates; normalize so `prev` holds the
    // final scores exactly like the sequential path.
    if iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    IterationOutcome {
        iterations,
        converged,
        final_delta,
        pairs_evaluated: vec![n; iterations],
    }
}

/// Evaluates an explicit worklist against a read-only previous-iteration
/// buffer, writing `out[i]` for `worklist[i]`. Used by the sharded driver
/// ([`super::shards`]): shard-local worklists live for a single shard
/// visit, too short to amortize the persistent pool's barriers, so plain
/// scoped threads over disjoint chunks suffice. Each slot's value is a
/// pure function of `prev` (Jacobi) and the caller folds the results back
/// in worklist order, so the outcome is bitwise identical to a sequential
/// evaluation regardless of the thread count.
pub(crate) fn eval_worklist_parallel<U, F>(
    threads: usize,
    worklist: &[u32],
    prev: &[f64],
    out: &mut [f64],
    make_update: F,
) where
    F: Fn() -> U + Sync,
    U: FnMut(usize, &[f64]) -> f64,
{
    debug_assert_eq!(worklist.len(), out.len());
    debug_assert!(threads >= 2, "parallel evaluation needs two workers");
    let chunk = worklist.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (wl_chunk, out_chunk) in worklist.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let make_update = &make_update;
            scope.spawn(move || {
                let mut update = make_update();
                for (&slot, o) in wl_chunk.iter().zip(out_chunk) {
                    *o = update(slot as usize, prev);
                }
            });
        }
    });
}

/// The dirty-pair worklist shared between the coordinator (which rebuilds
/// it between iterations) and the workers (which only read it while an
/// iteration is in flight). The barriers at each iteration boundary order
/// the two phases, so no access is ever concurrent with a mutation.
struct SharedWorklist {
    cell: UnsafeCell<Vec<u32>>,
}

// SAFETY: mutation (coordinator) and reads (workers) are separated by the
// iteration barriers as documented above.
unsafe impl Sync for SharedWorklist {}

impl SharedWorklist {
    /// Shared view of the worklist.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent mutation (true for workers
    /// between the start and end barriers, and for the coordinator outside
    /// them).
    unsafe fn read(&self) -> &Vec<u32> {
        &*self.cell.get()
    }

    /// Mutable view of the worklist.
    ///
    /// # Safety
    /// Caller must be the coordinator, outside the barrier window (no
    /// worker holds a view).
    #[allow(clippy::mut_from_ref)]
    unsafe fn write(&self) -> &mut Vec<u32> {
        &mut *self.cell.get()
    }
}

/// Runs the **delta-driven** iteration loop on a worker pool spawned once
/// for the whole run.
///
/// Iteration 1 evaluates every slot; iteration `k > 1` evaluates only the
/// dependents (per `rdep_offsets` / `rdeps`) of slots whose score changed
/// bitwise in iteration `k−1`. Slots outside the worklist keep their
/// previous score exactly (the update is a pure function of inputs that
/// did not change), so results are bitwise identical to [`run_parallel`]
/// and to the sequential loops.
///
/// Buffer discipline: workers write worklist slots of the current buffer;
/// the coordinator concurrently repairs the disjoint set of slots that
/// changed last iteration but are *not* on the worklist (copying their
/// previous score forward), so after each iteration the write buffer is
/// complete.
///
/// `initial_worklist` and `approx` mirror
/// [`run_delta`](super::iterate::run_delta): a warm-start worklist and
/// ε-aware approximate gating. All scheduling decisions (accumulator
/// arithmetic, threshold crossings) are made by the coordinator between
/// barriers from order-independent reductions, so the approximate mode is
/// bitwise identical to its sequential counterpart too.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_delta<U, F>(
    threads: usize,
    max_iters: usize,
    epsilon: f64,
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    rdep_offsets: &[usize],
    rdeps: &[u32],
    mut record: Option<&mut super::iterate::Recorder<'_>>,
    initial_worklist: Option<Vec<u32>>,
    mut approx: Option<&mut super::iterate::ApproxState>,
    make_update: F,
) -> IterationOutcome
where
    F: Fn() -> U + Sync,
    U: FnMut(usize, &[f64]) -> f64,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    debug_assert!(threads >= 2, "parallel runtime needs at least two workers");
    if let Some(h) = record.as_deref_mut() {
        h.push(prev);
    }
    if initial_worklist.is_some() {
        // Warm start: slots outside the worklist must read through the
        // double buffer as-is.
        cur.copy_from_slice(prev);
    }
    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let worklist = SharedWorklist {
        cell: UnsafeCell::new(initial_worklist.unwrap_or_else(|| (0..n as u32).collect())),
    };
    let cursor = AtomicUsize::new(0);
    let chunk = AtomicUsize::new(1);
    let read_index = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let deltas: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let changed_sink: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    let mut pairs_evaluated = Vec::new();
    std::thread::scope(|scope| {
        for worker_delta in &deltas {
            let buffers = &buffers;
            let worklist = &worklist;
            let cursor = &cursor;
            let chunk = &chunk;
            let read_index = &read_index;
            let stop = &stop;
            let barrier = &barrier;
            let changed_sink = &changed_sink;
            let make_update = &make_update;
            scope.spawn(move || {
                let mut update = make_update();
                let mut local_changed: Vec<u32> = Vec::new();
                loop {
                    barrier.wait(); // iteration start (or shutdown)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let r = read_index.load(Ordering::Relaxed);
                    // SAFETY: this iteration only writes `buffers[1 - r]`.
                    let read = unsafe { buffers[r].as_read_slice() };
                    let write = &buffers[1 - r];
                    // SAFETY: the coordinator mutates the worklist only
                    // outside the barrier window.
                    let wl: &[u32] = unsafe { worklist.read() };
                    let step = chunk.load(Ordering::Relaxed);
                    let mut local_delta = 0.0f64;
                    local_changed.clear();
                    loop {
                        let start = cursor.fetch_add(step, Ordering::Relaxed);
                        if start >= wl.len() {
                            break;
                        }
                        let end = (start + step).min(wl.len());
                        for &slot_id in &wl[start..end] {
                            let slot = slot_id as usize;
                            let score = update(slot, read);
                            let d = (score - read[slot]).abs();
                            if d > local_delta {
                                local_delta = d;
                            }
                            if score.to_bits() != read[slot].to_bits() {
                                local_changed.push(slot_id);
                            }
                            // SAFETY: worklist slots are handed out
                            // disjointly by the cursor; the coordinator
                            // writes only non-worklist slots.
                            unsafe { write.write(slot, score) };
                        }
                    }
                    worker_delta.store(local_delta.to_bits(), Ordering::Relaxed);
                    if !local_changed.is_empty() {
                        changed_sink
                            .lock()
                            .expect("changed sink")
                            .extend_from_slice(&local_changed);
                    }
                    barrier.wait(); // iteration end
                }
            });
        }

        let mut read = 0usize;
        // Slots whose score changed in the previous iteration (C_{k−1}).
        let mut prev_changed: Vec<u32> = Vec::new();
        // Worklist-membership marks: mark[s] == epoch ⇔ s ∈ current D_k.
        let mut mark: Vec<u64> = vec![0; n];
        let mut epoch = 0u64;
        while iterations < max_iters {
            // SAFETY: workers are parked at the start barrier.
            let wl_len = unsafe { worklist.read() }.len();
            cursor.store(0, Ordering::Relaxed);
            chunk.store((wl_len / (threads * 8)).max(64), Ordering::Relaxed);
            read_index.store(read, Ordering::Relaxed);
            barrier.wait(); // release workers into the iteration
            {
                // Repair C_{k−1} \ D_k concurrently with the workers: copy
                // last iteration's value forward for changed slots that are
                // not being re-evaluated (their two-iterations-old copy in
                // the write buffer is stale). Disjoint from worker writes.
                // SAFETY: workers never write the read buffer, and only
                // write worklist slots of the write buffer.
                let read_buf = unsafe { buffers[read].as_read_slice() };
                let write = &buffers[1 - read];
                for &s in &prev_changed {
                    if mark[s as usize] != epoch {
                        unsafe { write.write(s as usize, read_buf[s as usize]) };
                    }
                }
            }
            barrier.wait(); // wait for every worklist slot to be written
            final_delta = deltas
                .iter()
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0, f64::max);
            pairs_evaluated.push(wl_len);
            iterations += 1;
            read = 1 - read;
            if let Some(h) = record.as_deref_mut() {
                // SAFETY: workers are parked at the start barrier; the
                // freshly written buffer is stable.
                h.push(unsafe { buffers[read].as_read_slice() });
            }
            if let Some(ap) = approx.as_deref_mut() {
                // Approximate error accounting, mirroring the sequential
                // loop: reset evaluated slots, fold this iteration's
                // changes into their dependents' accumulators (per-slot
                // max — order-independent, so bitwise equal to the
                // sequential schedule), then gate the next worklist on
                // the threshold. Runs before the convergence check so the
                // final accumulators certify the returned scores.
                {
                    // SAFETY: workers are parked at the start barrier.
                    let wl = unsafe { worklist.read() };
                    for &s in wl {
                        ap.acc[s as usize] = 0.0;
                    }
                }
                prev_changed.clear();
                std::mem::swap(
                    &mut prev_changed,
                    &mut *changed_sink.lock().expect("changed sink"),
                );
                // SAFETY: workers are parked; both buffers are stable.
                let new_buf = unsafe { buffers[read].as_read_slice() };
                let old_buf = unsafe { buffers[1 - read].as_read_slice() };
                ap.begin();
                for &c in &prev_changed {
                    let d = (new_buf[c as usize] - old_buf[c as usize]).abs();
                    let (a, b) = (rdep_offsets[c as usize], rdep_offsets[c as usize + 1]);
                    for &dep in &rdeps[a..b] {
                        ap.bump(dep, d);
                    }
                }
                epoch += 1;
                // SAFETY: workers are parked at the start barrier again.
                let wl = unsafe { worklist.write() };
                wl.clear();
                ap.commit(|t| {
                    if mark[t as usize] != epoch {
                        mark[t as usize] = epoch;
                        wl.push(t);
                    }
                });
                if final_delta < ap.stop_delta {
                    converged = true;
                    break;
                }
                continue;
            }
            if final_delta < epsilon {
                converged = true;
                break;
            }
            prev_changed.clear();
            std::mem::swap(
                &mut prev_changed,
                &mut *changed_sink.lock().expect("changed sink"),
            );
            // Next worklist: the dependents of every changed slot.
            epoch += 1;
            // SAFETY: workers are parked at the start barrier again.
            let wl = unsafe { worklist.write() };
            wl.clear();
            for &c in &prev_changed {
                let (a, b) = (rdep_offsets[c as usize], rdep_offsets[c as usize + 1]);
                for &dep in &rdeps[a..b] {
                    if mark[dep as usize] != epoch {
                        mark[dep as usize] = epoch;
                        wl.push(dep);
                    }
                }
            }
        }
        stop.store(true, Ordering::Release);
        barrier.wait(); // release workers into shutdown
    });

    if iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    IterationOutcome {
        iterations,
        converged,
        final_delta,
        pairs_evaluated,
    }
}

/// Parallel **trajectory replay** (see
/// [`run_replay`](super::iterate::run_replay) for the algorithm and the
/// bitwise-identity argument). The worker pool evaluates the per-iteration
/// worklists; the coordinator pre-fills each iteration's write buffer from
/// the recorded trajectory before releasing the workers (ordered by the
/// start barrier), then scans the completed buffer for the convergence
/// delta and the divergence set while the workers are parked.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_replay<U, F>(
    threads: usize,
    max_iters: usize,
    epsilon: f64,
    old_traj: &[Vec<f64>],
    always_dirty: &[u32],
    rdep_offsets: &[usize],
    rdeps: &[u32],
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    mut record: Option<&mut super::iterate::Recorder<'_>>,
    make_update: F,
) -> IterationOutcome
where
    F: Fn() -> U + Sync,
    U: FnMut(usize, &[f64]) -> f64,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    debug_assert!(threads >= 2, "parallel runtime needs at least two workers");
    debug_assert!(old_traj.len() >= 2, "replay needs at least one iterate");
    if let Some(h) = record.as_deref_mut() {
        h.push(prev);
    }

    let mut mark: Vec<u64> = vec![0; n];
    let mut epoch = 1u64;
    let mut initial_worklist: Vec<u32> = Vec::new();
    for &s in always_dirty {
        if mark[s as usize] != epoch {
            mark[s as usize] = epoch;
            initial_worklist.push(s);
        }
    }
    for s in 0..n {
        if prev[s].to_bits() != old_traj[0][s].to_bits() {
            for &dep in &rdeps[rdep_offsets[s]..rdep_offsets[s + 1]] {
                if mark[dep as usize] != epoch {
                    mark[dep as usize] = epoch;
                    initial_worklist.push(dep);
                }
            }
        }
    }

    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let worklist = SharedWorklist {
        cell: UnsafeCell::new(initial_worklist),
    };
    let cursor = AtomicUsize::new(0);
    let chunk = AtomicUsize::new(1);
    let read_index = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let deltas: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let changed_sink: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    let mut pairs_evaluated = Vec::new();
    std::thread::scope(|scope| {
        for worker_delta in &deltas {
            let buffers = &buffers;
            let worklist = &worklist;
            let cursor = &cursor;
            let chunk = &chunk;
            let read_index = &read_index;
            let stop = &stop;
            let barrier = &barrier;
            let changed_sink = &changed_sink;
            let make_update = &make_update;
            scope.spawn(move || {
                let mut update = make_update();
                let mut local_changed: Vec<u32> = Vec::new();
                loop {
                    barrier.wait(); // iteration start (or shutdown)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let r = read_index.load(Ordering::Relaxed);
                    // SAFETY: this iteration only writes `buffers[1 - r]`.
                    let read = unsafe { buffers[r].as_read_slice() };
                    let write = &buffers[1 - r];
                    // SAFETY: the coordinator mutates the worklist only
                    // outside the barrier window.
                    let wl: &[u32] = unsafe { worklist.read() };
                    let step = chunk.load(Ordering::Relaxed);
                    let mut local_delta = 0.0f64;
                    local_changed.clear();
                    loop {
                        let start = cursor.fetch_add(step, Ordering::Relaxed);
                        if start >= wl.len() {
                            break;
                        }
                        let end = (start + step).min(wl.len());
                        for &slot_id in &wl[start..end] {
                            let slot = slot_id as usize;
                            let score = update(slot, read);
                            let d = (score - read[slot]).abs();
                            if d > local_delta {
                                local_delta = d;
                            }
                            if score.to_bits() != read[slot].to_bits() {
                                local_changed.push(slot_id);
                            }
                            // SAFETY: worklist slots are handed out
                            // disjointly by the cursor; the coordinator
                            // writes nothing while an iteration runs.
                            unsafe { write.write(slot, score) };
                        }
                    }
                    worker_delta.store(local_delta.to_bits(), Ordering::Relaxed);
                    if !local_changed.is_empty() {
                        changed_sink
                            .lock()
                            .expect("changed sink")
                            .extend_from_slice(&local_changed);
                    }
                    barrier.wait(); // iteration end
                }
            });
        }

        let mut read = 0usize;
        let hist_iters = old_traj.len() - 1;
        let mut changed: Vec<u32> = Vec::new();

        // Phase A: replay along the recorded trajectory. The coordinator
        // pre-fills the write buffer from history while the workers are
        // parked; worker writes of worklist slots land on top.
        let mut k = 1usize;
        while iterations < max_iters && k <= hist_iters {
            let hist = &old_traj[k];
            // SAFETY: workers are parked at the start barrier.
            let wl_len = unsafe { worklist.read() }.len();
            unsafe { buffers[1 - read].copy_from(hist) };
            cursor.store(0, Ordering::Relaxed);
            chunk.store((wl_len / (threads * 8)).max(64), Ordering::Relaxed);
            read_index.store(read, Ordering::Relaxed);
            barrier.wait(); // release workers into the iteration
            barrier.wait(); // wait for every worklist slot to be written
            pairs_evaluated.push(wl_len);
            // Full scan while the workers are parked: the convergence
            // delta over all slots, and divergence from the old
            // trajectory for worklist propagation. Worker-local deltas
            // and changed sets are ignored in this phase (they compare
            // against the previous iterate, not the trajectory).
            changed_sink.lock().expect("changed sink").clear();
            // SAFETY: workers are parked; both buffers are stable.
            let prev_buf = unsafe { buffers[read].as_read_slice() };
            let cur_buf = unsafe { buffers[1 - read].as_read_slice() };
            let mut delta = 0.0f64;
            changed.clear();
            for s in 0..n {
                let d = (cur_buf[s] - prev_buf[s]).abs();
                if d > delta {
                    delta = d;
                }
                if cur_buf[s].to_bits() != hist[s].to_bits() {
                    changed.push(s as u32);
                }
            }
            if let Some(h) = record.as_deref_mut() {
                h.push(cur_buf);
            }
            final_delta = delta;
            iterations += 1;
            k += 1;
            read = 1 - read;
            if delta < epsilon {
                converged = true;
                break;
            }
            epoch += 1;
            // SAFETY: workers are parked at the start barrier again.
            let wl = unsafe { worklist.write() };
            wl.clear();
            for &s in always_dirty {
                if mark[s as usize] != epoch {
                    mark[s as usize] = epoch;
                    wl.push(s);
                }
            }
            for &c in &changed {
                for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                    if mark[dep as usize] != epoch {
                        mark[dep as usize] = epoch;
                        wl.push(dep);
                    }
                }
            }
        }

        // Phase B: history exhausted — standard dirty-worklist iteration
        // (the mechanics of `run_parallel_delta`), seeded from the last
        // two iterates.
        if !converged && iterations < max_iters {
            // SAFETY: workers are parked; both buffers are stable.
            let prev_buf = unsafe { buffers[1 - read].as_read_slice() };
            let cur_buf = unsafe { buffers[read].as_read_slice() };
            let mut prev_changed: Vec<u32> = Vec::new();
            for s in 0..n {
                if cur_buf[s].to_bits() != prev_buf[s].to_bits() {
                    prev_changed.push(s as u32);
                }
            }
            epoch += 1;
            {
                // SAFETY: workers are parked at the start barrier.
                let wl = unsafe { worklist.write() };
                wl.clear();
                for &c in &prev_changed {
                    for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                        if mark[dep as usize] != epoch {
                            mark[dep as usize] = epoch;
                            wl.push(dep);
                        }
                    }
                }
            }
            changed_sink.lock().expect("changed sink").clear();
            while iterations < max_iters {
                // SAFETY: workers are parked at the start barrier.
                let wl_len = unsafe { worklist.read() }.len();
                cursor.store(0, Ordering::Relaxed);
                chunk.store((wl_len / (threads * 8)).max(64), Ordering::Relaxed);
                read_index.store(read, Ordering::Relaxed);
                barrier.wait(); // release workers into the iteration
                {
                    // Repair C_{k−1} \ D_k concurrently with the workers
                    // (disjoint slots — see `run_parallel_delta`).
                    // SAFETY: workers never write the read buffer, and
                    // only write worklist slots of the write buffer.
                    let read_buf = unsafe { buffers[read].as_read_slice() };
                    let write = &buffers[1 - read];
                    for &s in &prev_changed {
                        if mark[s as usize] != epoch {
                            unsafe { write.write(s as usize, read_buf[s as usize]) };
                        }
                    }
                }
                barrier.wait(); // wait for every worklist slot to be written
                final_delta = deltas
                    .iter()
                    .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                    .fold(0.0, f64::max);
                pairs_evaluated.push(wl_len);
                iterations += 1;
                read = 1 - read;
                if let Some(h) = record.as_deref_mut() {
                    // SAFETY: workers are parked; the written buffer is
                    // stable.
                    h.push(unsafe { buffers[read].as_read_slice() });
                }
                if final_delta < epsilon {
                    converged = true;
                    break;
                }
                prev_changed.clear();
                std::mem::swap(
                    &mut prev_changed,
                    &mut *changed_sink.lock().expect("changed sink"),
                );
                epoch += 1;
                // SAFETY: workers are parked at the start barrier again.
                let wl = unsafe { worklist.write() };
                wl.clear();
                for &c in &prev_changed {
                    for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                        if mark[dep as usize] != epoch {
                            mark[dep as usize] = epoch;
                            wl.push(dep);
                        }
                    }
                }
            }
        }
        stop.store(true, Ordering::Release);
        barrier.wait(); // release workers into shutdown
    });

    if iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    IterationOutcome {
        iterations,
        converged,
        final_delta,
        pairs_evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_seq(
        scores: &mut [f64],
        cur: &mut [f64],
        max_iters: usize,
        epsilon: f64,
        update: impl Fn(usize, &[f64]) -> f64,
    ) -> IterationOutcome {
        let mut iterations = 0;
        let mut converged = false;
        let mut final_delta = f64::INFINITY;
        while iterations < max_iters {
            let mut delta = 0.0f64;
            for slot in 0..scores.len() {
                let s = update(slot, scores);
                delta = delta.max((s - scores[slot]).abs());
                cur[slot] = s;
            }
            scores.copy_from_slice(cur);
            final_delta = delta;
            iterations += 1;
            if delta < epsilon {
                converged = true;
                break;
            }
        }
        IterationOutcome {
            iterations,
            converged,
            final_delta,
            pairs_evaluated: vec![scores.len(); iterations],
        }
    }

    /// A toy contraction: each slot averages itself with its neighbors,
    /// decayed — converges geometrically like the engine's update.
    fn toy_update(slot: usize, prev: &[f64]) -> f64 {
        let n = prev.len();
        let left = prev[(slot + n - 1) % n];
        let right = prev[(slot + 1) % n];
        0.8 * (left + right + prev[slot]) / 3.0
    }

    #[test]
    fn parallel_matches_sequential_bitwise_on_toy_system() {
        let n = 4096;
        let init: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
        let mut seq = init.clone();
        let mut seq_cur = vec![0.0; n];
        let seq_out = run_seq(&mut seq, &mut seq_cur, 25, 1e-6, toy_update);

        let mut par = init.clone();
        let mut par_cur = vec![0.0; n];
        let par_out = run_parallel(4, 25, 1e-6, &mut par, &mut par_cur, || toy_update);

        assert_eq!(seq_out.iterations, par_out.iterations);
        assert_eq!(seq_out.converged, par_out.converged);
        assert_eq!(seq_out.final_delta.to_bits(), par_out.final_delta.to_bits());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel diverged");
        }
    }

    #[test]
    fn zero_max_iters_is_a_no_op() {
        let mut prev = vec![0.5; 600];
        let original = prev.clone();
        let mut cur = vec![0.0; 600];
        let out = run_parallel(2, 0, 1e-3, &mut prev, &mut cur, || toy_update);
        assert_eq!(out.iterations, 0);
        assert!(!out.converged);
        assert_eq!(prev, original);
    }

    #[test]
    fn odd_iteration_counts_land_in_prev() {
        let n = 1000;
        let init: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        for cap in 1..=3 {
            let mut seq = init.clone();
            let mut seq_cur = vec![0.0; n];
            run_seq(&mut seq, &mut seq_cur, cap, 0.0, toy_update);
            let mut par = init.clone();
            let mut par_cur = vec![0.0; n];
            let out = run_parallel(3, cap, 0.0, &mut par, &mut par_cur, || toy_update);
            assert_eq!(out.iterations, cap);
            assert_eq!(seq, par, "cap={cap}");
        }
    }

    /// Ring dependency structure of [`toy_update`]: slot `s` is read by
    /// `s − 1`, `s` and `s + 1` (mod n).
    fn toy_rdeps(n: usize) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut rdeps = Vec::with_capacity(3 * n);
        offsets.push(0);
        for s in 0..n {
            for d in [(s + n - 1) % n, s, (s + 1) % n] {
                rdeps.push(d as u32);
            }
            offsets.push(rdeps.len());
        }
        (offsets, rdeps)
    }

    #[test]
    fn parallel_delta_matches_sequential_bitwise_on_toy_system() {
        let n = 4096;
        // A locally-perturbed start: most slots begin at the fixpoint-ish
        // plateau so the dirty worklist actually shrinks.
        let init: Vec<f64> = (0..n)
            .map(|i| if i % 511 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut seq = init.clone();
        let mut seq_cur = vec![0.0; n];
        let seq_out = run_seq(&mut seq, &mut seq_cur, 30, 1e-9, toy_update);

        let (offsets, rdeps) = toy_rdeps(n);
        let mut par = init.clone();
        let mut par_cur = vec![0.0; n];
        let mut history: Vec<Vec<f64>> = Vec::new();
        let mut recorder = super::super::iterate::Recorder::new(&mut history, usize::MAX);
        let par_out = run_parallel_delta(
            4,
            30,
            1e-9,
            &mut par,
            &mut par_cur,
            &offsets,
            &rdeps,
            Some(&mut recorder),
            None,
            None,
            || toy_update,
        );
        let _ = recorder;

        assert_eq!(seq_out.iterations, par_out.iterations);
        assert_eq!(seq_out.converged, par_out.converged);
        assert_eq!(seq_out.final_delta.to_bits(), par_out.final_delta.to_bits());
        assert_eq!(par_out.pairs_evaluated.len(), par_out.iterations);
        assert_eq!(par_out.pairs_evaluated[0], n, "first iteration is full");
        assert!(
            par_out.pairs_evaluated.iter().sum::<usize>() < n * par_out.iterations,
            "dirty scheduling must skip clean slots on this workload"
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "delta runner diverged");
        }
        // The recorded trajectory covers init plus every iterate.
        assert_eq!(history.len(), par_out.iterations + 1);
        assert_eq!(history[0], init);
        assert_eq!(history.last().unwrap(), &par);
    }

    #[test]
    fn parallel_replay_matches_cold_run_on_edited_system() {
        let n = 4096;
        let init: Vec<f64> = (0..n).map(|i| (i % 193) as f64 / 193.0).collect();
        // Record the original system's trajectory.
        let mut base = init.clone();
        let mut base_cur = vec![0.0; n];
        let (offsets, rdeps) = toy_rdeps(n);
        let mut history: Vec<Vec<f64>> = Vec::new();
        let mut recorder = super::super::iterate::Recorder::new(&mut history, usize::MAX);
        run_parallel_delta(
            4,
            40,
            1e-9,
            &mut base,
            &mut base_cur,
            &offsets,
            &rdeps,
            Some(&mut recorder),
            None,
            None,
            || toy_update,
        );
        let _ = recorder;
        // "Edit": slot 777's update function changes.
        let edited_update = |slot: usize, prev: &[f64]| {
            if slot == 777 {
                0.5 * toy_update(slot, prev)
            } else {
                toy_update(slot, prev)
            }
        };
        let mut cold = init.clone();
        let mut cold_cur = vec![0.0; n];
        let cold_out = run_seq(&mut cold, &mut cold_cur, 40, 1e-9, edited_update);

        let mut warm = init.clone();
        let mut warm_cur = vec![0.0; n];
        let mut new_traj: Vec<Vec<f64>> = Vec::new();
        let mut new_rec = super::super::iterate::Recorder::new(&mut new_traj, usize::MAX);
        let warm_out = run_parallel_replay(
            4,
            40,
            1e-9,
            &history,
            &[777],
            &offsets,
            &rdeps,
            &mut warm,
            &mut warm_cur,
            Some(&mut new_rec),
            || edited_update,
        );
        let _ = new_rec;
        assert_eq!(warm_out.iterations, cold_out.iterations);
        assert_eq!(warm_out.converged, cold_out.converged);
        assert_eq!(
            warm_out.final_delta.to_bits(),
            cold_out.final_delta.to_bits()
        );
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits(), "replay diverged from cold run");
        }
        // The replay evaluates far fewer slots than the cold run.
        assert!(
            warm_out.pairs_evaluated.iter().sum::<usize>()
                < cold_out.pairs_evaluated.iter().sum::<usize>() / 2,
            "replay must skip most of the work"
        );
        // The new trajectory chains: it matches the edited system's run.
        assert_eq!(new_traj.len(), warm_out.iterations + 1);
        assert_eq!(new_traj.last().unwrap(), &warm);
    }

    #[test]
    fn eval_worklist_parallel_matches_sequential_order() {
        let n = 5000;
        let prev: Vec<f64> = (0..n).map(|i| (i % 31) as f64 / 31.0).collect();
        let worklist: Vec<u32> = (0..n as u32).step_by(3).collect();
        let mut seq = vec![0.0; worklist.len()];
        for (i, &s) in worklist.iter().enumerate() {
            seq[i] = toy_update(s as usize, &prev);
        }
        for threads in [2, 3, 7] {
            let mut par = vec![0.0; worklist.len()];
            eval_worklist_parallel(threads, &worklist, &prev, &mut par, || toy_update);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn per_worker_state_is_reused_across_iterations() {
        use std::sync::atomic::AtomicUsize;
        let factories = AtomicUsize::new(0);
        let mut prev = vec![0.9; 2000];
        let mut cur = vec![0.0; 2000];
        let threads = 3;
        let out = run_parallel(threads, 10, 1e-9, &mut prev, &mut cur, || {
            factories.fetch_add(1, Ordering::Relaxed);
            |_slot: usize, prev: &[f64]| prev[0] * 0.5
        });
        assert!(
            out.iterations > 1,
            "toy system should take several iterations"
        );
        assert_eq!(
            factories.load(Ordering::Relaxed),
            threads,
            "worker state must be created once per worker, not per iteration"
        );
    }
}
