//! The persistent parallel runtime of §3.4.
//!
//! The seed implementation spawned a fresh `crossbeam::scope` with a
//! `Mutex<Vec>` work queue on **every iteration** of Algorithm 1, and its
//! first replacement still spawned a `std::thread::scope` pool on every
//! *run* — four separate spawn sites across the sweep, delta, replay and
//! shard drivers. This module replaces all of them with a single
//! [`Runtime`]: a worker pool spawned **once per engine session** (the
//! only `thread::spawn` call in the crate — `tests/spawn_sites.rs` pins
//! that). Workers park on a condition variable between dispatches and
//! live until the engine is dropped, so per-worker state — the
//! [`OpScratch`] buffers and the dirty-set staging vector in
//! [`WorkerState`] — survives across iterations, runs, reruns and shard
//! visits instead of being reallocated per run.
//!
//! The iteration drivers below are plain sequential coordinators that
//! dispatch one job per iteration: workers pull disjoint slot ranges via
//! a lock-free atomic cursor (chunk size scaled to the worklist length by
//! [`chunk_size`]), and [`Runtime::run`] blocks until every worker has
//! finished, which both publishes the workers' writes and keeps the
//! borrows captured by the job alive for exactly as long as they are
//! used.
//!
//! The bitwise sequential ≡ parallel guarantee is preserved: each slot's
//! new score is a pure function of the previous iteration's buffer (which
//! no worker writes), the cursor hands out disjoint write ranges, and the
//! convergence metric is an order-independent max-reduction.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::operators::OpScratch;

/// What a (sequential or parallel) run of the iteration loop reports.
#[derive(Debug, Clone)]
pub(crate) struct IterationOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether `Δ < ε` was reached before the cap.
    pub converged: bool,
    /// The final `Δ = max |FSim^k − FSim^{k−1}|` (∞ if no iteration ran).
    pub final_delta: f64,
    /// Pairs re-evaluated per iteration (`|H|` every iteration for the
    /// full sweep; the dirty-worklist length under delta scheduling).
    pub pairs_evaluated: Vec<usize>,
    /// Wall-clock seconds per iteration, aligned with `pairs_evaluated`
    /// (the per-iteration pairs-per-second metric is their ratio).
    pub iter_seconds: Vec<f64>,
}

impl IterationOutcome {
    /// An outcome for a run that executed no iterations.
    pub(crate) fn empty() -> Self {
        Self {
            iterations: 0,
            converged: false,
            final_delta: f64::INFINITY,
            pairs_evaluated: Vec::new(),
            iter_seconds: Vec::new(),
        }
    }
}

/// The cursor chunk for a worklist of `len` slots split over `threads`
/// workers: each pull should own enough pairs to amortize the atomic, but
/// stay fine-grained enough to balance skewed per-pair costs. Scales with
/// the worklist instead of a fixed constant so the late, short iterations
/// of a delta run are not handed out in one oversized piece (the
/// before/after numbers are recorded in `docs/BENCHMARKS.md`).
pub(crate) fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 8)).max(64)
}

/// Live worker threads across all [`Runtime`]s in the process. Spawn
/// increments before the worker parks, exit decrements after shutdown;
/// [`Runtime`]'s `Drop` joins its workers, so after an engine drop the
/// counter observably returns to its prior value
/// (`tests/runtime_shutdown.rs`).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The number of parked-or-running runtime worker threads currently alive
/// in the process (diagnostic; see [`FsimEngine`](crate::FsimEngine) for
/// the runtime's lifecycle).
pub fn live_runtime_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// State a worker owns for its whole lifetime — created when the
/// [`Runtime`] spawns it and reused across every iteration, run and shard
/// visit the session dispatches.
pub(crate) struct WorkerState {
    /// Operator scratch buffers (matcher state, gather values, …).
    pub scratch: OpScratch,
    /// Staging buffer for the slots this worker changed in the current
    /// iteration (drained into the coordinator's sink once per dispatch).
    pub changed: Vec<u32>,
}

impl WorkerState {
    fn new() -> Self {
        Self {
            scratch: OpScratch::new(),
            changed: Vec::new(),
        }
    }
}

/// A job dispatched to the pool: invoked once per worker with the
/// worker's index and its persistent state.
type Job<'a> = dyn Fn(usize, &mut WorkerState) + Sync + 'a;

/// Type-erased pointer to the current dispatch's job. The coordinator
/// blocks in [`Runtime::run`] until every worker has finished, so the
/// pointee outlives every dereference despite the `'static` cast.
#[derive(Clone, Copy)]
struct JobPtr(*const Job<'static>);

// SAFETY: the pointer is only dereferenced by workers while the
// dispatching thread is blocked keeping the pointee alive (see
// `Runtime::run`).
unsafe impl Send for JobPtr {}

/// Dispatch gate shared between the coordinator and the workers.
struct Gate {
    /// Bumped once per dispatch; a worker runs the job iff it has not
    /// seen the current generation yet.
    generation: u64,
    /// The current dispatch's job (valid while `running > 0`).
    job: Option<JobPtr>,
    /// Workers still executing the current generation.
    running: usize,
    /// First panic payload out of the current generation's workers.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set once by `Drop`; workers exit at the next wake-up.
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    /// Workers park here between dispatches.
    go: Condvar,
    /// The coordinator parks here until `running` returns to zero.
    done: Condvar,
}

/// The session-persistent worker pool. Spawned once (lazily, at the first
/// parallel run) and owned by the engine; the configured thread count is
/// a session property — reconfiguring it replaces the runtime.
pub(crate) struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Spawns `threads` parked workers (the crate's only spawn site).
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a runtime below two workers is pointless");
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate {
                generation: 0,
                job: None,
                running: 0,
                panic: None,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, wid))
            })
            .collect();
        Self { shared, handles }
    }

    /// The pool's worker count.
    pub(crate) fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` once on every worker and blocks until all of them have
    /// finished. The blocking is what makes the borrow-erasure sound: the
    /// job (and everything it captures) outlives every worker's use of
    /// it. A panic inside any worker is re-raised here after the
    /// remaining workers finish the dispatch.
    pub(crate) fn run(&self, job: &Job<'_>) {
        // SAFETY (cast): fat-pointer lifetime erasure only; the pointee
        // is kept alive by this frame until `running == 0` below.
        let ptr =
            JobPtr(unsafe { std::mem::transmute::<*const Job<'_>, *const Job<'static>>(job) });
        {
            let mut g = self.shared.gate.lock().expect("runtime gate");
            debug_assert_eq!(g.running, 0, "overlapping dispatch");
            g.generation += 1;
            g.job = Some(ptr);
            g.running = self.handles.len();
        }
        self.shared.go.notify_all();
        let mut g = self.shared.gate.lock().expect("runtime gate");
        while g.running > 0 {
            g = self.shared.done.wait(g).expect("runtime gate");
        }
        g.job = None;
        if let Some(payload) = g.panic.take() {
            drop(g);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut g = self.shared.gate.lock().expect("runtime gate");
            g.shutdown = true;
        }
        self.shared.go.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, wid: usize) {
    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
    let mut state = WorkerState::new();
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = shared.gate.lock().expect("runtime gate");
            loop {
                if g.shutdown {
                    drop(g);
                    LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if g.generation != seen {
                    seen = g.generation;
                    break g.job.expect("job set for generation");
                }
                g = shared.go.wait(g).expect("runtime gate");
            }
        };
        // SAFETY: the dispatching thread blocks in `Runtime::run` until
        // `running` returns to zero, keeping the pointee alive.
        let job_ref: &Job<'static> = unsafe { &*job.0 };
        // A panicking job must still complete the dispatch or the
        // coordinator deadlocks; the payload is carried back and
        // re-raised there.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job_ref(wid, &mut state)));
        let mut g = shared.gate.lock().expect("runtime gate");
        if let Err(payload) = result {
            if g.panic.is_none() {
                g.panic = Some(payload);
            }
        }
        g.running -= 1;
        if g.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// A score buffer shared with the worker pool.
///
/// Workers read the *previous* buffer (never written during an iteration)
/// and write disjoint slot ranges of the *current* buffer, so no location
/// is ever accessed mutably by two parties. `UnsafeCell` expresses exactly
/// that hand-verified aliasing discipline; the dispatch gate's mutex at
/// each iteration boundary publishes the writes.
struct SharedScores<'a> {
    cells: &'a [UnsafeCell<f64>],
}

// SAFETY: all concurrent access follows the disjoint-range discipline
// documented above; `f64` needs no drop or validity bookkeeping.
unsafe impl Sync for SharedScores<'_> {}

impl<'a> SharedScores<'a> {
    fn new(buf: &'a mut [f64]) -> Self {
        let ptr = buf as *mut [f64] as *const [UnsafeCell<f64>];
        // SAFETY: `UnsafeCell<f64>` is `repr(transparent)` over `f64`, and
        // we hold the unique `&mut` borrow for `'a`.
        Self {
            cells: unsafe { &*ptr },
        }
    }

    /// The buffer as a plain slice.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent writes for the borrow's
    /// lifetime (true for the read buffer within one iteration).
    unsafe fn as_read_slice(&self) -> &[f64] {
        std::slice::from_raw_parts(self.cells.as_ptr() as *const f64, self.cells.len())
    }

    /// Writes one slot.
    ///
    /// # Safety
    /// Caller must be the only writer of `slot` this iteration.
    #[inline]
    unsafe fn write(&self, slot: usize, value: f64) {
        *self.cells[slot].get() = value;
    }

    /// Overwrites the whole buffer from `src`.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent access at all (true for the
    /// coordinator between dispatches).
    unsafe fn copy_from(&self, src: &[f64]) {
        debug_assert_eq!(src.len(), self.cells.len());
        let dst = std::slice::from_raw_parts_mut(self.cells.as_ptr() as *mut f64, self.cells.len());
        dst.copy_from_slice(src);
    }
}

/// Runs the full-sweep iteration loop on the session's [`Runtime`].
///
/// `prev` holds `FSim⁰` on entry and the final scores on exit; `cur` is
/// the same-length double buffer. `update` maps `(slot, prev_scores,
/// scratch) → new score` and must be a pure function of its inputs
/// (scratch is worker-persistent reusable buffer space, not state).
pub(crate) fn run_parallel<U>(
    rt: &Runtime,
    max_iters: usize,
    epsilon: f64,
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    update: U,
) -> IterationOutcome
where
    U: Fn(usize, &[f64], &mut OpScratch) -> f64 + Sync,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    let chunk = chunk_size(n, rt.threads());
    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let cursor = AtomicUsize::new(0);
    let deltas: Vec<AtomicU64> = (0..rt.threads()).map(|_| AtomicU64::new(0)).collect();

    let mut out = IterationOutcome::empty();
    let mut read = 0usize;
    while out.iterations < max_iters {
        let t0 = Instant::now();
        cursor.store(0, Ordering::Relaxed);
        rt.run(&|wid, ws| {
            // SAFETY: this iteration only reads `buffers[read]` and
            // writes disjoint cursor ranges of `buffers[1 - read]`.
            let read_buf = unsafe { buffers[read].as_read_slice() };
            let write = &buffers[1 - read];
            let mut local_delta = 0.0f64;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for slot in start..end {
                    let score = update(slot, read_buf, &mut ws.scratch);
                    let d = (score - read_buf[slot]).abs();
                    if d > local_delta {
                        local_delta = d;
                    }
                    // SAFETY: `start..end` ranges from the cursor are
                    // disjoint across workers.
                    unsafe { write.write(slot, score) };
                }
            }
            deltas[wid].store(local_delta.to_bits(), Ordering::Relaxed);
        });
        out.final_delta = deltas
            .iter()
            .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
            .fold(0.0, f64::max);
        out.pairs_evaluated.push(n);
        out.iter_seconds.push(t0.elapsed().as_secs_f64());
        out.iterations += 1;
        read = 1 - read;
        if out.final_delta < epsilon {
            out.converged = true;
            break;
        }
    }

    // The last-written buffer alternates; normalize so `prev` holds the
    // final scores exactly like the sequential path.
    if out.iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    out
}

/// Evaluates an explicit worklist against a read-only previous-iteration
/// buffer, writing `out[i]` for `worklist[i]`. Used by the sharded driver
/// ([`super::shards`]): each slot's value is a pure function of `prev`
/// (Jacobi) and the caller folds the results back in worklist order, so
/// the outcome is bitwise identical to a sequential evaluation regardless
/// of the worker count.
pub(crate) fn eval_worklist_parallel<U>(
    rt: &Runtime,
    worklist: &[u32],
    prev: &[f64],
    out: &mut [f64],
    update: U,
) where
    U: Fn(usize, &[f64], &mut OpScratch) -> f64 + Sync,
{
    debug_assert_eq!(worklist.len(), out.len());
    let n = worklist.len();
    let chunk = chunk_size(n, rt.threads());
    let shared_out = SharedScores::new(out);
    let cursor = AtomicUsize::new(0);
    rt.run(&|_wid, ws| {
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for (i, &slot) in worklist.iter().enumerate().take(end).skip(start) {
                let v = update(slot as usize, prev, &mut ws.scratch);
                // SAFETY: cursor ranges are disjoint across workers.
                unsafe { shared_out.write(i, v) };
            }
        }
    });
}

/// Runs the **delta-driven** iteration loop on the session's [`Runtime`].
///
/// Iteration 1 evaluates every slot; iteration `k > 1` evaluates only the
/// dependents (per `rdep_offsets` / `rdeps`) of slots whose score changed
/// bitwise in iteration `k−1`. Slots outside the worklist keep their
/// previous score exactly (the update is a pure function of inputs that
/// did not change), so results are bitwise identical to [`run_parallel`]
/// and to the sequential loops.
///
/// `initial_worklist` and `approx` mirror
/// [`run_delta`](super::iterate::run_delta): a warm-start worklist and
/// ε-aware approximate gating. All scheduling decisions (accumulator
/// arithmetic, threshold crossings) are made by the coordinator between
/// dispatches from order-independent reductions, so the approximate mode
/// is bitwise identical to its sequential counterpart too.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_delta<U>(
    rt: &Runtime,
    max_iters: usize,
    epsilon: f64,
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    rdep_offsets: &[usize],
    rdeps: &[u32],
    mut record: Option<&mut super::iterate::Recorder<'_>>,
    initial_worklist: Option<Vec<u32>>,
    mut approx: Option<&mut super::iterate::ApproxState>,
    update: U,
) -> IterationOutcome
where
    U: Fn(usize, &[f64], &mut OpScratch) -> f64 + Sync,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    if let Some(h) = record.as_deref_mut() {
        h.push(prev);
    }
    if initial_worklist.is_some() {
        // Warm start: slots outside the worklist must read through the
        // double buffer as-is.
        cur.copy_from_slice(prev);
    }
    let mut worklist = initial_worklist.unwrap_or_else(|| (0..n as u32).collect());
    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let cursor = AtomicUsize::new(0);
    let deltas: Vec<AtomicU64> = (0..rt.threads()).map(|_| AtomicU64::new(0)).collect();
    let changed_sink: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    let mut out = IterationOutcome::empty();
    let mut read = 0usize;
    // Slots whose score changed in the previous iteration (C_{k−1}).
    let mut prev_changed: Vec<u32> = Vec::new();
    // Worklist-membership marks: mark[s] == epoch ⇔ s ∈ current D_k.
    let mut mark: Vec<u64> = vec![0; n];
    let mut epoch = 0u64;
    while out.iterations < max_iters {
        let t0 = Instant::now();
        {
            // Repair C_{k−1} \ D_k before the dispatch: copy last
            // iteration's value forward for changed slots that are not
            // being re-evaluated (their two-iterations-old copy in the
            // write buffer is stale).
            // SAFETY: no dispatch is in flight; the coordinator has
            // exclusive access to both buffers.
            let read_buf = unsafe { buffers[read].as_read_slice() };
            let write = &buffers[1 - read];
            for &s in &prev_changed {
                if mark[s as usize] != epoch {
                    // SAFETY: same window — no dispatch in flight, and
                    // `prev_changed` slots are distinct, so this is the
                    // sole writer of `s`.
                    unsafe { write.write(s as usize, read_buf[s as usize]) };
                }
            }
        }
        cursor.store(0, Ordering::Relaxed);
        let chunk = chunk_size(worklist.len(), rt.threads());
        let wl = &worklist;
        rt.run(&|wid, ws| {
            // SAFETY: this iteration only reads `buffers[read]` and
            // writes disjoint worklist slots of `buffers[1 - read]`.
            let read_buf = unsafe { buffers[read].as_read_slice() };
            let write = &buffers[1 - read];
            let mut local_delta = 0.0f64;
            ws.changed.clear();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= wl.len() {
                    break;
                }
                let end = (start + chunk).min(wl.len());
                for &slot_id in &wl[start..end] {
                    let slot = slot_id as usize;
                    let score = update(slot, read_buf, &mut ws.scratch);
                    let d = (score - read_buf[slot]).abs();
                    if d > local_delta {
                        local_delta = d;
                    }
                    if score.to_bits() != read_buf[slot].to_bits() {
                        ws.changed.push(slot_id);
                    }
                    // SAFETY: worklist slots are handed out disjointly by
                    // the cursor; the coordinator wrote only non-worklist
                    // slots, before the dispatch.
                    unsafe { write.write(slot, score) };
                }
            }
            deltas[wid].store(local_delta.to_bits(), Ordering::Relaxed);
            if !ws.changed.is_empty() {
                changed_sink
                    .lock()
                    .expect("changed sink")
                    .extend_from_slice(&ws.changed);
            }
        });
        out.final_delta = deltas
            .iter()
            .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
            .fold(0.0, f64::max);
        out.pairs_evaluated.push(worklist.len());
        out.iter_seconds.push(t0.elapsed().as_secs_f64());
        out.iterations += 1;
        read = 1 - read;
        if let Some(h) = record.as_deref_mut() {
            // SAFETY: no dispatch is in flight; the freshly written
            // buffer is stable.
            h.push(unsafe { buffers[read].as_read_slice() });
        }
        if let Some(ap) = approx.as_deref_mut() {
            // Approximate error accounting, mirroring the sequential
            // loop: reset evaluated slots, fold this iteration's changes
            // into their dependents' accumulators (per-slot max —
            // order-independent, so bitwise equal to the sequential
            // schedule), then gate the next worklist on the threshold.
            // Runs before the convergence check so the final accumulators
            // certify the returned scores.
            for &s in &worklist {
                ap.acc[s as usize] = 0.0;
            }
            prev_changed.clear();
            std::mem::swap(
                &mut prev_changed,
                &mut *changed_sink.lock().expect("changed sink"),
            );
            // SAFETY: no dispatch is in flight; both buffers are stable.
            let new_buf = unsafe { buffers[read].as_read_slice() };
            // SAFETY: as above — both reads share the quiescent window.
            let old_buf = unsafe { buffers[1 - read].as_read_slice() };
            ap.begin();
            for &c in &prev_changed {
                let d = (new_buf[c as usize] - old_buf[c as usize]).abs();
                let (a, b) = (rdep_offsets[c as usize], rdep_offsets[c as usize + 1]);
                for &dep in &rdeps[a..b] {
                    ap.bump(dep, d);
                }
            }
            epoch += 1;
            worklist.clear();
            ap.commit(|t| {
                if mark[t as usize] != epoch {
                    mark[t as usize] = epoch;
                    worklist.push(t);
                }
            });
            if out.final_delta < ap.stop_delta {
                out.converged = true;
                break;
            }
            continue;
        }
        if out.final_delta < epsilon {
            out.converged = true;
            break;
        }
        prev_changed.clear();
        std::mem::swap(
            &mut prev_changed,
            &mut *changed_sink.lock().expect("changed sink"),
        );
        // Next worklist: the dependents of every changed slot.
        epoch += 1;
        worklist.clear();
        for &c in &prev_changed {
            let (a, b) = (rdep_offsets[c as usize], rdep_offsets[c as usize + 1]);
            for &dep in &rdeps[a..b] {
                if mark[dep as usize] != epoch {
                    mark[dep as usize] = epoch;
                    worklist.push(dep);
                }
            }
        }
    }

    if out.iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    out
}

/// Parallel **trajectory replay** (see
/// [`run_replay`](super::iterate::run_replay) for the algorithm and the
/// bitwise-identity argument). The worker pool evaluates the per-iteration
/// worklists; the coordinator pre-fills each iteration's write buffer from
/// the recorded trajectory before the dispatch, then scans the completed
/// buffer for the convergence delta and the divergence set between
/// dispatches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_replay<U>(
    rt: &Runtime,
    max_iters: usize,
    epsilon: f64,
    old_traj: &[Vec<f64>],
    always_dirty: &[u32],
    rdep_offsets: &[usize],
    rdeps: &[u32],
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    mut record: Option<&mut super::iterate::Recorder<'_>>,
    update: U,
) -> IterationOutcome
where
    U: Fn(usize, &[f64], &mut OpScratch) -> f64 + Sync,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    debug_assert!(old_traj.len() >= 2, "replay needs at least one iterate");
    if let Some(h) = record.as_deref_mut() {
        h.push(prev);
    }

    let mut mark: Vec<u64> = vec![0; n];
    let mut epoch = 1u64;
    let mut worklist: Vec<u32> = Vec::new();
    for &s in always_dirty {
        if mark[s as usize] != epoch {
            mark[s as usize] = epoch;
            worklist.push(s);
        }
    }
    for s in 0..n {
        if prev[s].to_bits() != old_traj[0][s].to_bits() {
            for &dep in &rdeps[rdep_offsets[s]..rdep_offsets[s + 1]] {
                if mark[dep as usize] != epoch {
                    mark[dep as usize] = epoch;
                    worklist.push(dep);
                }
            }
        }
    }

    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let cursor = AtomicUsize::new(0);
    let deltas: Vec<AtomicU64> = (0..rt.threads()).map(|_| AtomicU64::new(0)).collect();
    let changed_sink: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    // One dispatch: evaluate the current worklist against `buffers[read]`,
    // writing into `buffers[1 - read]`.
    let eval_worklist = |read: usize, wl: &[u32]| {
        cursor.store(0, Ordering::Relaxed);
        let chunk = chunk_size(wl.len(), rt.threads());
        rt.run(&|wid, ws| {
            // SAFETY: this iteration only reads `buffers[read]` and
            // writes disjoint worklist slots of `buffers[1 - read]`.
            let read_buf = unsafe { buffers[read].as_read_slice() };
            let write = &buffers[1 - read];
            let mut local_delta = 0.0f64;
            ws.changed.clear();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= wl.len() {
                    break;
                }
                let end = (start + chunk).min(wl.len());
                for &slot_id in &wl[start..end] {
                    let slot = slot_id as usize;
                    let score = update(slot, read_buf, &mut ws.scratch);
                    let d = (score - read_buf[slot]).abs();
                    if d > local_delta {
                        local_delta = d;
                    }
                    if score.to_bits() != read_buf[slot].to_bits() {
                        ws.changed.push(slot_id);
                    }
                    // SAFETY: worklist slots are handed out disjointly by
                    // the cursor.
                    unsafe { write.write(slot, score) };
                }
            }
            deltas[wid].store(local_delta.to_bits(), Ordering::Relaxed);
            if !ws.changed.is_empty() {
                changed_sink
                    .lock()
                    .expect("changed sink")
                    .extend_from_slice(&ws.changed);
            }
        });
    };

    let mut out = IterationOutcome::empty();
    let mut read = 0usize;
    let hist_iters = old_traj.len() - 1;
    let mut changed: Vec<u32> = Vec::new();

    // Phase A: replay along the recorded trajectory. The coordinator
    // pre-fills the write buffer from history between dispatches; worker
    // writes of worklist slots land on top.
    let mut k = 1usize;
    while out.iterations < max_iters && k <= hist_iters {
        let t0 = Instant::now();
        let hist = &old_traj[k];
        // SAFETY: no dispatch is in flight.
        unsafe { buffers[1 - read].copy_from(hist) };
        let wl_len = worklist.len();
        eval_worklist(read, &worklist);
        out.pairs_evaluated.push(wl_len);
        // Full scan between dispatches: the convergence delta over all
        // slots, and divergence from the old trajectory for worklist
        // propagation. Worker-local deltas and changed sets are ignored
        // in this phase (they compare against the previous iterate, not
        // the trajectory).
        changed_sink.lock().expect("changed sink").clear();
        // SAFETY: no dispatch is in flight; both buffers are stable.
        let prev_buf = unsafe { buffers[read].as_read_slice() };
        // SAFETY: as above — both reads share the quiescent window.
        let cur_buf = unsafe { buffers[1 - read].as_read_slice() };
        let mut delta = 0.0f64;
        changed.clear();
        for s in 0..n {
            let d = (cur_buf[s] - prev_buf[s]).abs();
            if d > delta {
                delta = d;
            }
            if cur_buf[s].to_bits() != hist[s].to_bits() {
                changed.push(s as u32);
            }
        }
        if let Some(h) = record.as_deref_mut() {
            h.push(cur_buf);
        }
        out.final_delta = delta;
        out.iter_seconds.push(t0.elapsed().as_secs_f64());
        out.iterations += 1;
        k += 1;
        read = 1 - read;
        if delta < epsilon {
            out.converged = true;
            break;
        }
        epoch += 1;
        worklist.clear();
        for &s in always_dirty {
            if mark[s as usize] != epoch {
                mark[s as usize] = epoch;
                worklist.push(s);
            }
        }
        for &c in &changed {
            for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                if mark[dep as usize] != epoch {
                    mark[dep as usize] = epoch;
                    worklist.push(dep);
                }
            }
        }
    }

    // Phase B: history exhausted — standard dirty-worklist iteration
    // (the mechanics of `run_parallel_delta`), seeded from the last
    // two iterates.
    if !out.converged && out.iterations < max_iters {
        // SAFETY: no dispatch is in flight; both buffers are stable.
        let prev_buf = unsafe { buffers[1 - read].as_read_slice() };
        // SAFETY: as above — both reads share the quiescent window.
        let cur_buf = unsafe { buffers[read].as_read_slice() };
        let mut prev_changed: Vec<u32> = Vec::new();
        for s in 0..n {
            if cur_buf[s].to_bits() != prev_buf[s].to_bits() {
                prev_changed.push(s as u32);
            }
        }
        epoch += 1;
        worklist.clear();
        for &c in &prev_changed {
            for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                if mark[dep as usize] != epoch {
                    mark[dep as usize] = epoch;
                    worklist.push(dep);
                }
            }
        }
        changed_sink.lock().expect("changed sink").clear();
        while out.iterations < max_iters {
            let t0 = Instant::now();
            {
                // Repair C_{k−1} \ D_k before the dispatch (disjoint
                // slots — see `run_parallel_delta`).
                // SAFETY: no dispatch is in flight.
                let read_buf = unsafe { buffers[read].as_read_slice() };
                let write = &buffers[1 - read];
                for &s in &prev_changed {
                    if mark[s as usize] != epoch {
                        // SAFETY: same window — no dispatch in flight,
                        // and `prev_changed` slots are distinct, so this
                        // is the sole writer of `s`.
                        unsafe { write.write(s as usize, read_buf[s as usize]) };
                    }
                }
            }
            let wl_len = worklist.len();
            eval_worklist(read, &worklist);
            out.final_delta = deltas
                .iter()
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0, f64::max);
            out.pairs_evaluated.push(wl_len);
            out.iter_seconds.push(t0.elapsed().as_secs_f64());
            out.iterations += 1;
            read = 1 - read;
            if let Some(h) = record.as_deref_mut() {
                // SAFETY: no dispatch is in flight; the written buffer is
                // stable.
                h.push(unsafe { buffers[read].as_read_slice() });
            }
            if out.final_delta < epsilon {
                out.converged = true;
                break;
            }
            prev_changed.clear();
            std::mem::swap(
                &mut prev_changed,
                &mut *changed_sink.lock().expect("changed sink"),
            );
            epoch += 1;
            worklist.clear();
            for &c in &prev_changed {
                for &dep in &rdeps[rdep_offsets[c as usize]..rdep_offsets[c as usize + 1]] {
                    if mark[dep as usize] != epoch {
                        mark[dep as usize] = epoch;
                        worklist.push(dep);
                    }
                }
            }
        }
    }

    if out.iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_seq(
        scores: &mut [f64],
        cur: &mut [f64],
        max_iters: usize,
        epsilon: f64,
        update: impl Fn(usize, &[f64]) -> f64,
    ) -> IterationOutcome {
        let mut out = IterationOutcome::empty();
        while out.iterations < max_iters {
            let mut delta = 0.0f64;
            for slot in 0..scores.len() {
                let s = update(slot, scores);
                delta = delta.max((s - scores[slot]).abs());
                cur[slot] = s;
            }
            scores.copy_from_slice(cur);
            out.final_delta = delta;
            out.pairs_evaluated.push(scores.len());
            out.iter_seconds.push(0.0);
            out.iterations += 1;
            if delta < epsilon {
                out.converged = true;
                break;
            }
        }
        out
    }

    /// A toy contraction: each slot averages itself with its neighbors,
    /// decayed — converges geometrically like the engine's update.
    fn toy_update(slot: usize, prev: &[f64]) -> f64 {
        let n = prev.len();
        let left = prev[(slot + n - 1) % n];
        let right = prev[(slot + 1) % n];
        0.8 * (left + right + prev[slot]) / 3.0
    }

    fn toy(slot: usize, prev: &[f64], _scratch: &mut OpScratch) -> f64 {
        toy_update(slot, prev)
    }

    #[test]
    fn parallel_matches_sequential_bitwise_on_toy_system() {
        let n = 4096;
        let init: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
        let mut seq = init.clone();
        let mut seq_cur = vec![0.0; n];
        let seq_out = run_seq(&mut seq, &mut seq_cur, 25, 1e-6, toy_update);

        let rt = Runtime::new(4);
        let mut par = init.clone();
        let mut par_cur = vec![0.0; n];
        let par_out = run_parallel(&rt, 25, 1e-6, &mut par, &mut par_cur, toy);

        assert_eq!(seq_out.iterations, par_out.iterations);
        assert_eq!(seq_out.converged, par_out.converged);
        assert_eq!(seq_out.final_delta.to_bits(), par_out.final_delta.to_bits());
        assert_eq!(par_out.iter_seconds.len(), par_out.iterations);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel diverged");
        }
    }

    #[test]
    fn zero_max_iters_is_a_no_op() {
        let rt = Runtime::new(2);
        let mut prev = vec![0.5; 600];
        let original = prev.clone();
        let mut cur = vec![0.0; 600];
        let out = run_parallel(&rt, 0, 1e-3, &mut prev, &mut cur, toy);
        assert_eq!(out.iterations, 0);
        assert!(!out.converged);
        assert_eq!(prev, original);
    }

    #[test]
    fn odd_iteration_counts_land_in_prev() {
        let n = 1000;
        let init: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let rt = Runtime::new(3);
        for cap in 1..=3 {
            let mut seq = init.clone();
            let mut seq_cur = vec![0.0; n];
            run_seq(&mut seq, &mut seq_cur, cap, 0.0, toy_update);
            let mut par = init.clone();
            let mut par_cur = vec![0.0; n];
            let out = run_parallel(&rt, cap, 0.0, &mut par, &mut par_cur, toy);
            assert_eq!(out.iterations, cap);
            assert_eq!(seq, par, "cap={cap}");
        }
    }

    /// Ring dependency structure of [`toy_update`]: slot `s` is read by
    /// `s − 1`, `s` and `s + 1` (mod n).
    fn toy_rdeps(n: usize) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut rdeps = Vec::with_capacity(3 * n);
        offsets.push(0);
        for s in 0..n {
            for d in [(s + n - 1) % n, s, (s + 1) % n] {
                rdeps.push(d as u32);
            }
            offsets.push(rdeps.len());
        }
        (offsets, rdeps)
    }

    #[test]
    fn parallel_delta_matches_sequential_bitwise_on_toy_system() {
        let n = 4096;
        // A locally-perturbed start: most slots begin at the fixpoint-ish
        // plateau so the dirty worklist actually shrinks.
        let init: Vec<f64> = (0..n)
            .map(|i| if i % 511 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut seq = init.clone();
        let mut seq_cur = vec![0.0; n];
        let seq_out = run_seq(&mut seq, &mut seq_cur, 30, 1e-9, toy_update);

        let (offsets, rdeps) = toy_rdeps(n);
        let rt = Runtime::new(4);
        let mut par = init.clone();
        let mut par_cur = vec![0.0; n];
        let mut history: Vec<Vec<f64>> = Vec::new();
        let mut recorder = super::super::iterate::Recorder::new(&mut history, usize::MAX);
        let par_out = run_parallel_delta(
            &rt,
            30,
            1e-9,
            &mut par,
            &mut par_cur,
            &offsets,
            &rdeps,
            Some(&mut recorder),
            None,
            None,
            toy,
        );
        let _ = recorder;

        assert_eq!(seq_out.iterations, par_out.iterations);
        assert_eq!(seq_out.converged, par_out.converged);
        assert_eq!(seq_out.final_delta.to_bits(), par_out.final_delta.to_bits());
        assert_eq!(par_out.pairs_evaluated.len(), par_out.iterations);
        assert_eq!(par_out.iter_seconds.len(), par_out.iterations);
        assert_eq!(par_out.pairs_evaluated[0], n, "first iteration is full");
        assert!(
            par_out.pairs_evaluated.iter().sum::<usize>() < n * par_out.iterations,
            "dirty scheduling must skip clean slots on this workload"
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "delta runner diverged");
        }
        // The recorded trajectory covers init plus every iterate.
        assert_eq!(history.len(), par_out.iterations + 1);
        assert_eq!(history[0], init);
        assert_eq!(history.last().unwrap(), &par);
    }

    #[test]
    fn parallel_replay_matches_cold_run_on_edited_system() {
        let n = 4096;
        let init: Vec<f64> = (0..n).map(|i| (i % 193) as f64 / 193.0).collect();
        // Record the original system's trajectory.
        let mut base = init.clone();
        let mut base_cur = vec![0.0; n];
        let (offsets, rdeps) = toy_rdeps(n);
        let rt = Runtime::new(4);
        let mut history: Vec<Vec<f64>> = Vec::new();
        let mut recorder = super::super::iterate::Recorder::new(&mut history, usize::MAX);
        run_parallel_delta(
            &rt,
            40,
            1e-9,
            &mut base,
            &mut base_cur,
            &offsets,
            &rdeps,
            Some(&mut recorder),
            None,
            None,
            toy,
        );
        let _ = recorder;
        // "Edit": slot 777's update function changes.
        let edited_update = |slot: usize, prev: &[f64]| {
            if slot == 777 {
                0.5 * toy_update(slot, prev)
            } else {
                toy_update(slot, prev)
            }
        };
        let mut cold = init.clone();
        let mut cold_cur = vec![0.0; n];
        let cold_out = run_seq(&mut cold, &mut cold_cur, 40, 1e-9, edited_update);

        let mut warm = init.clone();
        let mut warm_cur = vec![0.0; n];
        let mut new_traj: Vec<Vec<f64>> = Vec::new();
        let mut new_rec = super::super::iterate::Recorder::new(&mut new_traj, usize::MAX);
        let warm_out = run_parallel_replay(
            &rt,
            40,
            1e-9,
            &history,
            &[777],
            &offsets,
            &rdeps,
            &mut warm,
            &mut warm_cur,
            Some(&mut new_rec),
            |slot, prev, _s| edited_update(slot, prev),
        );
        let _ = new_rec;
        assert_eq!(warm_out.iterations, cold_out.iterations);
        assert_eq!(warm_out.converged, cold_out.converged);
        assert_eq!(
            warm_out.final_delta.to_bits(),
            cold_out.final_delta.to_bits()
        );
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits(), "replay diverged from cold run");
        }
        // The replay evaluates far fewer slots than the cold run.
        assert!(
            warm_out.pairs_evaluated.iter().sum::<usize>()
                < cold_out.pairs_evaluated.iter().sum::<usize>() / 2,
            "replay must skip most of the work"
        );
        // The new trajectory chains: it matches the edited system's run.
        assert_eq!(new_traj.len(), warm_out.iterations + 1);
        assert_eq!(new_traj.last().unwrap(), &warm);
    }

    #[test]
    fn eval_worklist_parallel_matches_sequential_order() {
        let n = 5000;
        let prev: Vec<f64> = (0..n).map(|i| (i % 31) as f64 / 31.0).collect();
        let worklist: Vec<u32> = (0..n as u32).step_by(3).collect();
        let mut seq = vec![0.0; worklist.len()];
        for (i, &s) in worklist.iter().enumerate() {
            seq[i] = toy_update(s as usize, &prev);
        }
        for threads in [2, 3, 7] {
            let rt = Runtime::new(threads);
            let mut par = vec![0.0; worklist.len()];
            eval_worklist_parallel(&rt, &worklist, &prev, &mut par, toy);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn worker_state_persists_across_dispatches_and_runs() {
        let rt = Runtime::new(3);
        // First dispatch stamps each worker's persistent staging buffer…
        rt.run(&|wid, ws| {
            ws.changed.clear();
            ws.changed.push(wid as u32);
        });
        // …a full iteration run happens in between (its workers clear and
        // refill `changed`, proving it is the same buffer)…
        let mut prev = vec![0.9; 2000];
        let mut cur = vec![0.0; 2000];
        let out = run_parallel(&rt, 10, 1e-9, &mut prev, &mut cur, |_, p, _| p[0] * 0.5);
        assert!(out.iterations > 1, "toy system should iterate");
        // …and the scratch allocations observed afterwards are the ones
        // from before: no per-run reallocation means capacity is retained.
        let retained = AtomicUsize::new(0);
        rt.run(&|_wid, ws| {
            if ws.changed.capacity() > 0 || !ws.changed.is_empty() {
                retained.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            retained.load(Ordering::Relaxed) >= 1,
            "per-worker state must survive across dispatches"
        );
    }

    #[test]
    fn runtime_repanics_worker_panics() {
        let rt = Runtime::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(&|wid, _ws| {
                if wid == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must surface on dispatch");
        // The pool survives a panicking job: later dispatches still work.
        let count = AtomicUsize::new(0);
        rt.run(&|_wid, _ws| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn chunk_size_scales_with_worklist() {
        assert_eq!(chunk_size(100, 4), 64, "short worklists keep the floor");
        assert!(chunk_size(1_000_000, 4) > chunk_size(10_000, 4));
        // Every slot is covered: threads × chunk ≥ len is not required
        // (workers loop on the cursor), but chunk must never be zero.
        assert!(chunk_size(0, 8) > 0);
    }
}
