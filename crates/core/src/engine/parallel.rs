//! The persistent parallel runtime of §3.4.
//!
//! The seed implementation spawned a fresh `crossbeam::scope` with a
//! `Mutex<Vec>` work queue on **every iteration** of Algorithm 1 — thread
//! creation and queue locking dominated small and medium worklists. This
//! module replaces it with a worker pool spawned **once per run**: workers
//! live across all iterations, pull disjoint slot ranges via a lock-free
//! atomic cursor, and synchronize with the coordinator through a barrier at
//! each iteration boundary. Per-worker [`OpScratch`]-style state is created
//! once and reused for the whole run.
//!
//! The bitwise sequential ≡ parallel guarantee is preserved: each slot's
//! new score is a pure function of the previous iteration's buffer (which
//! no worker writes), the cursor hands out disjoint write ranges, and the
//! convergence metric is an order-independent max-reduction.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// What a (sequential or parallel) run of the iteration loop reports.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IterationOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether `Δ < ε` was reached before the cap.
    pub converged: bool,
    /// The final `Δ = max |FSim^k − FSim^{k−1}|` (∞ if no iteration ran).
    pub final_delta: f64,
}

/// A score buffer shared with the worker pool.
///
/// Workers read the *previous* buffer (never written during an iteration)
/// and write disjoint slot ranges of the *current* buffer, so no location
/// is ever accessed mutably by two parties. `UnsafeCell` expresses exactly
/// that hand-verified aliasing discipline; the barrier at each iteration
/// boundary publishes the writes.
struct SharedScores<'a> {
    cells: &'a [UnsafeCell<f64>],
}

// SAFETY: all concurrent access follows the disjoint-range discipline
// documented above; `f64` needs no drop or validity bookkeeping.
unsafe impl Sync for SharedScores<'_> {}

impl<'a> SharedScores<'a> {
    fn new(buf: &'a mut [f64]) -> Self {
        let ptr = buf as *mut [f64] as *const [UnsafeCell<f64>];
        // SAFETY: `UnsafeCell<f64>` is `repr(transparent)` over `f64`, and
        // we hold the unique `&mut` borrow for `'a`.
        Self {
            cells: unsafe { &*ptr },
        }
    }

    /// The buffer as a plain slice.
    ///
    /// # Safety
    /// Caller must guarantee no concurrent writes for the borrow's
    /// lifetime (true for the read buffer within one iteration).
    unsafe fn as_read_slice(&self) -> &[f64] {
        std::slice::from_raw_parts(self.cells.as_ptr() as *const f64, self.cells.len())
    }

    /// Writes one slot.
    ///
    /// # Safety
    /// Caller must be the only writer of `slot` this iteration.
    #[inline]
    unsafe fn write(&self, slot: usize, value: f64) {
        *self.cells[slot].get() = value;
    }
}

/// Runs the iteration loop on a worker pool spawned once for the whole
/// run.
///
/// `prev` holds `FSim⁰` on entry and the final scores on exit; `cur` is
/// the same-length double buffer. `make_update` is invoked once per worker
/// to build its stateful update closure `(slot, prev_scores) → new score`
/// (owning scratch buffers for the run's lifetime).
pub(crate) fn run_parallel<U, F>(
    threads: usize,
    max_iters: usize,
    epsilon: f64,
    prev: &mut Vec<f64>,
    cur: &mut Vec<f64>,
    make_update: F,
) -> IterationOutcome
where
    F: Fn() -> U + Sync,
    U: FnMut(usize, &[f64]) -> f64,
{
    let n = prev.len();
    debug_assert_eq!(n, cur.len());
    debug_assert!(threads >= 2, "parallel runtime needs at least two workers");
    // Each cursor pull should own enough pairs to amortize the atomic, but
    // stay fine-grained enough to balance skewed per-pair costs.
    let chunk = (n / (threads * 8)).max(256);
    let buffers = [SharedScores::new(prev), SharedScores::new(cur)];
    let cursor = AtomicUsize::new(0);
    let read_index = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let deltas: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    let mut iterations = 0usize;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    std::thread::scope(|scope| {
        for worker_delta in &deltas {
            let buffers = &buffers;
            let cursor = &cursor;
            let read_index = &read_index;
            let stop = &stop;
            let barrier = &barrier;
            let make_update = &make_update;
            scope.spawn(move || {
                let mut update = make_update();
                loop {
                    barrier.wait(); // iteration start (or shutdown)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let r = read_index.load(Ordering::Relaxed);
                    // SAFETY: this iteration only writes `buffers[1 - r]`.
                    let read = unsafe { buffers[r].as_read_slice() };
                    let write = &buffers[1 - r];
                    let mut local_delta = 0.0f64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for slot in start..end {
                            let score = update(slot, read);
                            let d = (score - read[slot]).abs();
                            if d > local_delta {
                                local_delta = d;
                            }
                            // SAFETY: `start..end` ranges from the cursor
                            // are disjoint across workers.
                            unsafe { write.write(slot, score) };
                        }
                    }
                    worker_delta.store(local_delta.to_bits(), Ordering::Relaxed);
                    barrier.wait(); // iteration end
                }
            });
        }

        let mut read = 0usize;
        while iterations < max_iters {
            cursor.store(0, Ordering::Relaxed);
            read_index.store(read, Ordering::Relaxed);
            barrier.wait(); // release workers into the iteration
            barrier.wait(); // wait for every slot to be written
            final_delta = deltas
                .iter()
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0, f64::max);
            iterations += 1;
            read = 1 - read;
            if final_delta < epsilon {
                converged = true;
                break;
            }
        }
        stop.store(true, Ordering::Release);
        barrier.wait(); // release workers into shutdown
    });

    // The last-written buffer alternates; normalize so `prev` holds the
    // final scores exactly like the sequential path.
    if iterations % 2 == 1 {
        std::mem::swap(prev, cur);
    }
    IterationOutcome {
        iterations,
        converged,
        final_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_seq(
        scores: &mut [f64],
        cur: &mut [f64],
        max_iters: usize,
        epsilon: f64,
        update: impl Fn(usize, &[f64]) -> f64,
    ) -> IterationOutcome {
        let mut iterations = 0;
        let mut converged = false;
        let mut final_delta = f64::INFINITY;
        while iterations < max_iters {
            let mut delta = 0.0f64;
            for slot in 0..scores.len() {
                let s = update(slot, scores);
                delta = delta.max((s - scores[slot]).abs());
                cur[slot] = s;
            }
            scores.copy_from_slice(cur);
            final_delta = delta;
            iterations += 1;
            if delta < epsilon {
                converged = true;
                break;
            }
        }
        IterationOutcome {
            iterations,
            converged,
            final_delta,
        }
    }

    /// A toy contraction: each slot averages itself with its neighbors,
    /// decayed — converges geometrically like the engine's update.
    fn toy_update(slot: usize, prev: &[f64]) -> f64 {
        let n = prev.len();
        let left = prev[(slot + n - 1) % n];
        let right = prev[(slot + 1) % n];
        0.8 * (left + right + prev[slot]) / 3.0
    }

    #[test]
    fn parallel_matches_sequential_bitwise_on_toy_system() {
        let n = 4096;
        let init: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 97.0).collect();
        let mut seq = init.clone();
        let mut seq_cur = vec![0.0; n];
        let seq_out = run_seq(&mut seq, &mut seq_cur, 25, 1e-6, toy_update);

        let mut par = init.clone();
        let mut par_cur = vec![0.0; n];
        let par_out = run_parallel(4, 25, 1e-6, &mut par, &mut par_cur, || toy_update);

        assert_eq!(seq_out.iterations, par_out.iterations);
        assert_eq!(seq_out.converged, par_out.converged);
        assert_eq!(seq_out.final_delta.to_bits(), par_out.final_delta.to_bits());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "parallel diverged");
        }
    }

    #[test]
    fn zero_max_iters_is_a_no_op() {
        let mut prev = vec![0.5; 600];
        let original = prev.clone();
        let mut cur = vec![0.0; 600];
        let out = run_parallel(2, 0, 1e-3, &mut prev, &mut cur, || toy_update);
        assert_eq!(out.iterations, 0);
        assert!(!out.converged);
        assert_eq!(prev, original);
    }

    #[test]
    fn odd_iteration_counts_land_in_prev() {
        let n = 1000;
        let init: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        for cap in 1..=3 {
            let mut seq = init.clone();
            let mut seq_cur = vec![0.0; n];
            run_seq(&mut seq, &mut seq_cur, cap, 0.0, toy_update);
            let mut par = init.clone();
            let mut par_cur = vec![0.0; n];
            let out = run_parallel(3, cap, 0.0, &mut par, &mut par_cur, || toy_update);
            assert_eq!(out.iterations, cap);
            assert_eq!(seq, par, "cap={cap}");
        }
    }

    #[test]
    fn per_worker_state_is_reused_across_iterations() {
        use std::sync::atomic::AtomicUsize;
        let factories = AtomicUsize::new(0);
        let mut prev = vec![0.9; 2000];
        let mut cur = vec![0.0; 2000];
        let threads = 3;
        let out = run_parallel(threads, 10, 1e-9, &mut prev, &mut cur, || {
            factories.fetch_add(1, Ordering::Relaxed);
            |_slot: usize, prev: &[f64]| prev[0] * 0.5
        });
        assert!(
            out.iterations > 1,
            "toy system should take several iterations"
        );
        assert_eq!(
            factories.load(Ordering::Relaxed),
            threads,
            "worker state must be created once per worker, not per iteration"
        );
    }
}
