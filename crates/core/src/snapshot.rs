//! Cheap, shareable snapshots of a converged run — the unit a serving
//! layer publishes as an *epoch*.
//!
//! [`FsimResult`] is the full per-run record: it owns the candidate
//! store, the scores **and** the per-iteration diagnostics
//! (`pairs_evaluated`, `iteration_seconds`), and the engine behind it
//! additionally holds the recorded replay trajectory (an
//! `iterations × |H|` matrix). None of that belongs in a read path that
//! hands the same converged scores to thousands of concurrent readers.
//!
//! [`ScoreSnapshot`] is the split: exactly the converged scores, the
//! store needed to index them, and the scalar run summary (iterations,
//! convergence flag, certified [`error_bound`](ScoreSnapshot::error_bound),
//! [`score_hash`](ScoreSnapshot::score_hash)). Its heap footprint is
//! `Θ(|H|)` — independent of how many iterations the producing run took
//! and of any replay state the session keeps (pinned by a regression
//! test below) — and `Clone` is two `Arc` bumps, so a reader can retain
//! an epoch for the cost of a pointer copy while the writer converges
//! and publishes the next one.

use crate::operators::ScoreLookup;
use crate::result::FsimResult;
use crate::store::{Fallback, PairIndex, PairStore};
use crate::topk::top_k_from_iter;
use fsim_graph::NodeId;
use std::sync::Arc;

/// An immutable, `Arc`-shared view of one converged score buffer.
///
/// Produced by [`FsimEngine::snapshot_shared`](crate::FsimEngine::snapshot_shared)
/// (an `O(|H|)` copy of store + scores) and by
/// [`FsimResult::into_snapshot`] (a move — no copy at all). Cloning the
/// snapshot itself is `O(1)`.
///
/// ```
/// use fsim_core::{FsimConfig, FsimEngine, Variant};
/// use fsim_graph::graph_from_parts;
/// use fsim_labels::LabelFn;
///
/// let g = graph_from_parts(&["a", "b"], &[(0, 1)]);
/// let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
/// let mut engine = FsimEngine::new(&g, &g, &cfg).unwrap();
/// engine.run();
/// let epoch = engine.snapshot_shared();
/// let reader = epoch.clone(); // O(1): both share the same buffers
/// assert_eq!(reader.get(0, 0), Some(1.0));
/// assert_eq!(reader.score_hash(), epoch.score_hash());
/// ```
#[derive(Debug, Clone)]
pub struct ScoreSnapshot {
    store: Arc<PairStore>,
    scores: Arc<[f64]>,
    iterations: usize,
    converged: bool,
    final_delta: f64,
    error_bound: f64,
    score_hash: u64,
}

impl ScoreSnapshot {
    pub(crate) fn from_parts(
        store: Arc<PairStore>,
        scores: Arc<[f64]>,
        iterations: usize,
        converged: bool,
        final_delta: f64,
        error_bound: f64,
    ) -> Self {
        let score_hash = score_hash(
            store
                .pairs
                .iter()
                .zip(scores.iter())
                .map(|(&(u, v), &s)| (u, v, s)),
        );
        Self {
            store,
            scores,
            iterations,
            converged,
            final_delta,
            error_bound,
            score_hash,
        }
    }

    /// Score of a maintained pair, or `None` if `(u, v)` was pruned.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.store
            .index
            .get(u, v)
            .and_then(|i| self.scores.get(i).copied())
    }

    /// Score with the engine's fallback semantics for pruned pairs
    /// (0, or `α·ub` under upper-bound pruning).
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        self.store.view(&self.scores).get(u, v)
    }

    /// Number of maintained pairs (`|H|`).
    pub fn pair_count(&self) -> usize {
        self.store.len()
    }

    /// Whether the maintained set is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates `(u, v, score)` over maintained pairs in slot order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + Clone + '_ {
        self.store
            .pairs
            .iter()
            .zip(self.scores.iter())
            .map(|(&(u, v), &s)| (u, v, s))
    }

    /// The `k` best-scoring maintained pairs, sorted by descending score
    /// (ties broken by `(u, v)`).
    pub fn top_k(&self, k: usize, exclude_identity: bool) -> Vec<(NodeId, NodeId, f64)> {
        top_k_from_iter(self.iter_pairs(), k, exclude_identity)
    }

    /// The `k` best-scoring right-nodes for a left node `u`, sorted by
    /// descending score (ties broken by node id).
    pub fn top_k_for_left(&self, u: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let mut row: Vec<(NodeId, f64)> = self
            .iter_pairs()
            .filter(|&(x, _, _)| x == u)
            .map(|(_, v, s)| (v, s))
            .collect();
        row.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        row.truncate(k);
        row
    }

    /// Iterations the producing run executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the producing run reached `Δ < ε`.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The producing run's last `Δ`.
    pub fn final_delta(&self) -> f64 {
        self.final_delta
    }

    /// Certified sup-norm error bound vs an exact scheduler under the
    /// same configuration — `0` for the bitwise-exact modes (see
    /// [`FsimResult::error_bound`]). A serving layer reports this
    /// per-response as the epoch's freshness bound.
    pub fn error_bound(&self) -> f64 {
        self.error_bound
    }

    /// FNV-1a hash over the full `(u, v, score-bits)` stream in slot
    /// order — a cheap fingerprint of the entire score buffer, computed
    /// once at snapshot construction. Two snapshots of bitwise-identical
    /// runs hash equal; any torn or mixed-epoch read is detectable
    /// because a response carrying `(epoch_id, score_hash, score)` came
    /// from exactly one immutable snapshot.
    pub fn score_hash(&self) -> u64 {
        self.score_hash
    }

    /// Estimated heap footprint in bytes: `Θ(|H|)` by construction. This
    /// is what the snapshot-size regression test pins — the snapshot
    /// must never grow with the iteration count or pick up replay state.
    pub fn heap_bytes(&self) -> usize {
        let pairs = self.store.pairs.len() * std::mem::size_of::<(NodeId, NodeId)>();
        let scores = self.scores.len() * std::mem::size_of::<f64>();
        let index = match &self.store.index {
            PairIndex::Dense { .. } => 0,
            // Key (u64) + value (u32) per entry; bucket overhead ignored —
            // the estimate only needs to be a deterministic Θ(|H|) figure.
            PairIndex::Sparse(map) => map.len() * 12,
        };
        let fallback = match &self.store.fallback {
            Fallback::Zero => 0,
            Fallback::AlphaUb(map) => map.len() * 12,
        };
        pairs + scores + index + fallback
    }
}

/// FNV-1a over an `(u, v, score)` stream: node ids and the raw score
/// bits, little-endian. The same fingerprint the convergence bench
/// records as `score_hash` in `BENCH_convergence.json`.
pub fn score_hash<I: Iterator<Item = (NodeId, NodeId, f64)>>(pairs: I) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for (u, v, s) in pairs {
        feed(&u.to_le_bytes());
        feed(&v.to_le_bytes());
        feed(&s.to_bits().to_le_bytes());
    }
    h
}

impl FsimResult {
    /// Converts this result into a shareable [`ScoreSnapshot`], moving
    /// the store and scores (no copy) and dropping the per-iteration
    /// diagnostics. The preferred way to publish the [`FsimResult`]
    /// returned by [`apply_edits`](crate::FsimEngine::apply_edits) as a
    /// serving epoch.
    pub fn into_snapshot(self) -> ScoreSnapshot {
        let (store, scores, iterations, converged, final_delta, error_bound) = self.into_parts();
        ScoreSnapshot::from_parts(
            Arc::new(store),
            scores.into(),
            iterations,
            converged,
            final_delta,
            error_bound,
        )
    }

    /// FNV-1a fingerprint of the full score stream (see
    /// [`ScoreSnapshot::score_hash`]).
    pub fn score_hash(&self) -> u64 {
        score_hash(self.iter_pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FsimConfig, Variant};
    use crate::engine::FsimEngine;
    use fsim_graph::graph_from_parts;
    use fsim_labels::LabelFn;

    fn graphs() -> (fsim_graph::Graph, fsim_graph::Graph) {
        let labels: Vec<String> = (0..24)
            .map(|i| ["a", "b", "c"][i % 3].to_string())
            .collect();
        let names: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        let edges: Vec<(u32, u32)> = (0..23u32)
            .map(|i| (i, i + 1))
            .chain((0..12u32).map(|i| (i * 2, (i * 2 + 5) % 24)))
            .collect();
        let g = graph_from_parts(&names, &edges);
        (g.clone(), g)
    }

    fn cfg() -> FsimConfig {
        FsimConfig::new(Variant::Bijective).label_fn(LabelFn::Indicator)
    }

    #[test]
    fn snapshot_matches_result() {
        let (g1, g2) = graphs();
        let mut engine = FsimEngine::new(&g1, &g2, &cfg()).unwrap();
        engine.run();
        let result = engine.snapshot();
        let snap = engine.snapshot_shared();
        assert_eq!(snap.pair_count(), result.pair_count());
        assert_eq!(snap.iterations(), result.iterations);
        assert_eq!(snap.converged(), result.converged);
        assert_eq!(snap.error_bound(), result.error_bound());
        assert_eq!(snap.score_hash(), result.score_hash());
        for (a, b) in snap.iter_pairs().zip(result.iter_pairs()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        assert_eq!(result.into_snapshot().score_hash(), snap.score_hash());
    }

    #[test]
    fn snapshot_clone_is_shared_not_copied() {
        let (g1, g2) = graphs();
        let mut engine = FsimEngine::new(&g1, &g2, &cfg()).unwrap();
        engine.run();
        let a = engine.snapshot_shared();
        let b = a.clone();
        assert!(
            Arc::ptr_eq(&a.store, &b.store),
            "clone must share the store"
        );
        assert!(
            std::ptr::eq(a.scores.as_ptr(), b.scores.as_ptr()),
            "clone must share the score buffer"
        );
    }

    /// The satellite regression: an epoch snapshot is `O(|H|)` — its
    /// size must not depend on how many iterations the run took, nor on
    /// whether the session recorded a replay trajectory.
    #[test]
    fn snapshot_size_is_independent_of_iterations_and_replay_state() {
        let (g1, g2) = graphs();

        // Few iterations, no trajectory recording.
        let quick = cfg().trajectory_budget(0);
        let mut fast = FsimEngine::new(&g1, &g2, &quick).unwrap();
        fast.run();
        let fast_snap = fast.snapshot_shared();

        // Many iterations (tight ε) with trajectory recording on: the
        // session now holds an `iterations × |H|` replay matrix.
        let mut slow_cfg = cfg();
        slow_cfg.epsilon = 1e-9;
        let mut slow = FsimEngine::new(&g1, &g2, &slow_cfg).unwrap();
        slow.run();
        assert!(
            slow.iterations() > fast.iterations(),
            "tight ε must cost extra iterations ({} vs {})",
            slow.iterations(),
            fast.iterations()
        );
        assert!(
            slow.can_replay_edits(),
            "the slow session must actually hold a recorded trajectory"
        );
        let slow_snap = slow.snapshot_shared();

        assert_eq!(fast_snap.pair_count(), slow_snap.pair_count());
        assert_eq!(
            fast_snap.heap_bytes(),
            slow_snap.heap_bytes(),
            "snapshot size grew with iterations / replay state"
        );
        // And the footprint is the flat per-pair figure, nothing more:
        // 8 bytes of pair ids + 8 bytes of score per slot (dense index).
        assert_eq!(fast_snap.heap_bytes(), fast_snap.pair_count() * 16);
    }

    #[test]
    fn score_hash_discriminates_scores() {
        let (g1, g2) = graphs();
        let mut engine = FsimEngine::new(&g1, &g2, &cfg()).unwrap();
        engine.run();
        let a = engine.snapshot_shared();
        engine
            .rerun(|c| c.variant = Variant::Simple)
            .expect("valid rerun");
        let b = engine.snapshot_shared();
        assert_ne!(
            a.score_hash(),
            b.score_hash(),
            "different converged scores must fingerprint differently"
        );
    }
}
