//! The candidate-pair store: which `(u, v) ∈ V1 × V2` pairs are maintained
//! (Algorithm 1, Line 1) and how their scores are indexed.

use crate::operators::ScoreLookup;
use fsim_graph::{pair_key, FxHashMap, NodeId};

/// Index from a pair `(u, v)` to its slot in the score buffers.
#[derive(Debug, Clone)]
pub enum PairIndex {
    /// All `|V1| × |V2|` pairs are maintained; slot = `u · |V2| + v`.
    /// Used by the default configuration (θ = 0, no pruning) — no hashing
    /// in the hot loop.
    Dense {
        /// `|V2|`.
        n2: u32,
    },
    /// Pruned candidate set; hashed lookup.
    Sparse(FxHashMap<u64, u32>),
}

impl PairIndex {
    /// Slot of `(u, v)` if maintained.
    ///
    /// A `v ≥ n2` dense lookup is `None` (the row-major formula would
    /// otherwise alias another row's slot); `u` overruns surface as slots
    /// past the score buffer, which callers reject via `slice::get`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<usize> {
        match self {
            PairIndex::Dense { n2 } => {
                if v < *n2 {
                    Some(u as usize * *n2 as usize + v as usize)
                } else {
                    None
                }
            }
            PairIndex::Sparse(map) => map.get(&pair_key(u, v)).map(|&i| i as usize),
        }
    }
}

/// What a lookup of a *non-maintained* pair returns.
#[derive(Debug, Clone)]
pub enum Fallback {
    /// θ-pruned pairs never contribute (§4.1 "Computation").
    Zero,
    /// Upper-bound pruning (§3.4): `α × ub(x, y)` for pruned pairs.
    /// The map is empty when `α = 0` (nothing needs storing).
    AlphaUb(FxHashMap<u64, f32>),
}

/// How a pair's previous-iteration score is obtained: from a maintained
/// slot, or as the pruning fallback constant. Resolved once per pair at
/// session-prepare time by the dependency-CSR builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairRef {
    /// The pair is maintained at this score-buffer slot.
    Slot(usize),
    /// The pair is pruned; every lookup serves this constant
    /// (`0` under θ-pruning, `α·ub` under upper-bound pruning).
    Absent(f64),
}

/// The maintained pairs plus their double-buffered scores.
#[derive(Debug, Clone)]
pub struct PairStore {
    /// Maintained pairs in slot order.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Pair → slot index.
    pub index: PairIndex,
    /// Fallback for absent pairs.
    pub fallback: Fallback,
}

impl PairStore {
    /// Resolves `(x, y)` to its slot or its constant fallback value —
    /// exactly the semantics of a [`ScoreView`] lookup, factored out so
    /// iteration-invariant structure can be materialized once.
    pub fn resolve(&self, x: NodeId, y: NodeId) -> PairRef {
        match self.index.get(x, y) {
            Some(i) => PairRef::Slot(i),
            None => PairRef::Absent(match &self.fallback {
                Fallback::Zero => 0.0,
                Fallback::AlphaUb(map) => {
                    map.get(&pair_key(x, y)).map(|&v| v as f64).unwrap_or(0.0)
                }
            }),
        }
    }
    /// Number of maintained pairs (`|H|` in the cost analysis).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// A read view over a score buffer for operator lookups.
    pub fn view<'a>(&'a self, scores: &'a [f64]) -> ScoreView<'a> {
        debug_assert_eq!(scores.len(), self.pairs.len());
        ScoreView {
            index: &self.index,
            fallback: &self.fallback,
            scores,
        }
    }
}

/// Read-only score accessor handed to the mapping operators.
#[derive(Debug, Clone, Copy)]
pub struct ScoreView<'a> {
    index: &'a PairIndex,
    fallback: &'a Fallback,
    scores: &'a [f64],
}

impl ScoreLookup for ScoreView<'_> {
    #[inline]
    fn get(&self, x: NodeId, y: NodeId) -> f64 {
        match self.index.get(x, y) {
            Some(i) => self.scores[i],
            None => match self.fallback {
                Fallback::Zero => 0.0,
                Fallback::AlphaUb(map) => {
                    map.get(&pair_key(x, y)).map(|&v| v as f64).unwrap_or(0.0)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_store(n1: u32, n2: u32) -> PairStore {
        let pairs: Vec<_> = (0..n1).flat_map(|u| (0..n2).map(move |v| (u, v))).collect();
        PairStore {
            pairs,
            index: PairIndex::Dense { n2 },
            fallback: Fallback::Zero,
        }
    }

    #[test]
    fn dense_index_is_row_major() {
        let s = dense_store(3, 4);
        for (slot, &(u, v)) in s.pairs.iter().enumerate() {
            assert_eq!(s.index.get(u, v), Some(slot));
        }
    }

    #[test]
    fn dense_index_rejects_out_of_range_columns() {
        let s = dense_store(3, 4);
        // v ≥ n2 must not alias the next row's slot.
        assert_eq!(s.index.get(0, 4), None);
        assert_eq!(s.index.get(1, 100), None);
    }

    #[test]
    fn sparse_index_misses_return_fallback() {
        let pairs = vec![(0, 1), (2, 3)];
        let mut map = FxHashMap::default();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            map.insert(pair_key(u, v), i as u32);
        }
        let store = PairStore {
            pairs,
            index: PairIndex::Sparse(map),
            fallback: Fallback::Zero,
        };
        let scores = vec![0.5, 0.7];
        let view = store.view(&scores);
        assert_eq!(view.get(0, 1), 0.5);
        assert_eq!(view.get(2, 3), 0.7);
        assert_eq!(view.get(1, 1), 0.0);
    }

    #[test]
    fn resolve_matches_view_semantics() {
        let mut ub = FxHashMap::default();
        ub.insert(pair_key(5, 5), 0.25f32);
        let store = PairStore {
            pairs: vec![(0, 0)],
            index: PairIndex::Sparse({
                let mut m = FxHashMap::default();
                m.insert(pair_key(0, 0), 0);
                m
            }),
            fallback: Fallback::AlphaUb(ub),
        };
        let scores = vec![0.75];
        let view = store.view(&scores);
        for (x, y) in [(0, 0), (5, 5), (9, 9)] {
            let via_resolve = match store.resolve(x, y) {
                PairRef::Slot(i) => scores[i],
                PairRef::Absent(c) => c,
            };
            assert_eq!(via_resolve.to_bits(), view.get(x, y).to_bits());
        }
    }

    #[test]
    fn alpha_ub_fallback_is_served() {
        let mut ub = FxHashMap::default();
        ub.insert(pair_key(5, 5), 0.25f32);
        let store = PairStore {
            pairs: vec![(0, 0)],
            index: PairIndex::Sparse({
                let mut m = FxHashMap::default();
                m.insert(pair_key(0, 0), 0);
                m
            }),
            fallback: Fallback::AlphaUb(ub),
        };
        let scores = vec![1.0];
        let view = store.view(&scores);
        assert_eq!(view.get(0, 0), 1.0);
        assert!((view.get(5, 5) - 0.25).abs() < 1e-6);
        assert_eq!(view.get(9, 9), 0.0);
    }
}
