//! The iterative `FSimχ` engine (Algorithm 1): initialization, the
//! per-iteration update of Equation 3, convergence control (Theorem 1 /
//! Corollary 1), and the multi-threaded execution of §3.4.

use crate::candidates::enumerate_candidates;
use crate::config::{ConfigError, FsimConfig, InitScheme, LabelTermMode, Variant};
use crate::operators::{LabelEval, OpCtx, Operator, OpScratch, VariantOp};
use crate::result::FsimResult;
use crate::store::PairStore;
use fsim_graph::{Graph, LabelId, LabelInterner, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Computes `FSimχ` scores between all maintained node pairs of
/// `(g1, g2)` for the variant selected in `cfg`.
///
/// This is the main entry point of the framework. `g1 == g2` (the same
/// graph passed twice) is explicitly allowed, matching footnote 2 of the
/// paper.
pub fn compute(g1: &Graph, g2: &Graph, cfg: &FsimConfig) -> Result<FsimResult, ConfigError> {
    let op = VariantOp { variant: cfg.variant, matcher: cfg.matcher };
    compute_with_operator(g1, g2, cfg, &op)
}

/// Computes fractional simulation with a custom [`Operator`] — the
/// "configure the framework" path of §4 (e.g. [`crate::operators::SimRankOp`]
/// or user-defined variants).
pub fn compute_with_operator<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    cfg: &FsimConfig,
    op: &O,
) -> Result<FsimResult, ConfigError> {
    cfg.validate()?;
    let aligned = AlignedLabels::new(g1, g2);
    let label_eval = build_label_eval(cfg, &aligned.interner);
    let ctx = OpCtx {
        labels1: &aligned.labels1,
        labels2: &aligned.labels2,
        label_eval: &label_eval,
        theta: cfg.theta,
    };

    let store = enumerate_candidates(g1, g2, &ctx, cfg, op);
    if store.is_empty() {
        return Ok(FsimResult::new(store, Vec::new(), 0, true, 0.0));
    }

    let mut prev = initialize(&store, &ctx, cfg, g1, g2);
    let mut cur = vec![0.0f64; prev.len()];
    let max_iters = cfg.effective_max_iters();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut delta = f64::INFINITY;
    while iterations < max_iters {
        delta = run_iteration(g1, g2, &ctx, cfg, op, &store, &prev, &mut cur);
        std::mem::swap(&mut prev, &mut cur);
        iterations += 1;
        if delta < cfg.epsilon {
            converged = true;
            break;
        }
    }
    Ok(FsimResult::new(store, prev, iterations, converged, delta))
}

/// One-shot re-evaluation of Equation 3 for an arbitrary pair against a
/// finished result — used to query pairs that were pruned from the
/// maintained set (their converged value is one update step away).
pub fn score_on_demand(
    g1: &Graph,
    g2: &Graph,
    cfg: &FsimConfig,
    result: &FsimResult,
    u: NodeId,
    v: NodeId,
) -> f64 {
    if let Some(s) = result.get(u, v) {
        return s;
    }
    let op = VariantOp { variant: cfg.variant, matcher: cfg.matcher };
    let aligned = AlignedLabels::new(g1, g2);
    let label_eval = build_label_eval(cfg, &aligned.interner);
    let ctx = OpCtx {
        labels1: &aligned.labels1,
        labels2: &aligned.labels2,
        label_eval: &label_eval,
        theta: cfg.theta,
    };
    let view = result.view();
    let mut scratch = OpScratch::new();
    pair_update(g1, g2, &ctx, cfg, &op, u, v, &view, &mut scratch)
}

/// Label arrays of both graphs expressed in one shared interner.
///
/// When the graphs already share an interner (the recommended construction)
/// this is a cheap copy; otherwise both label vocabularies are merged.
struct AlignedLabels {
    labels1: Vec<LabelId>,
    labels2: Vec<LabelId>,
    interner: Arc<LabelInterner>,
}

impl AlignedLabels {
    fn new(g1: &Graph, g2: &Graph) -> Self {
        if Arc::ptr_eq(g1.interner(), g2.interner()) {
            return Self {
                labels1: g1.labels().to_vec(),
                labels2: g2.labels().to_vec(),
                interner: Arc::clone(g1.interner()),
            };
        }
        let merged = LabelInterner::shared();
        let remap = |g: &Graph| -> Vec<LabelId> {
            let table: Vec<LabelId> =
                g.interner().all().iter().map(|s| merged.intern(s)).collect();
            g.labels().iter().map(|l| table[l.index()]).collect()
        };
        let labels1 = remap(g1);
        let labels2 = remap(g2);
        Self { labels1, labels2, interner: merged }
    }
}

fn build_label_eval(cfg: &FsimConfig, interner: &LabelInterner) -> LabelEval {
    match &cfg.label_term {
        LabelTermMode::Sim => LabelEval::Sim(cfg.label_fn.prepare(interner)),
        LabelTermMode::Constant(c) => LabelEval::Constant(*c),
    }
}

fn initialize(
    store: &PairStore,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    g1: &Graph,
    g2: &Graph,
) -> Vec<f64> {
    store
        .pairs
        .iter()
        .map(|&(u, v)| match cfg.init {
            InitScheme::LabelSim => ctx.label_sim(u, v),
            InitScheme::Identity => {
                if u == v {
                    1.0
                } else {
                    0.0
                }
            }
            InitScheme::OutDegreeRatio => {
                let (a, b) = (g1.out_degree(u), g2.out_degree(v));
                let (lo, hi) = (a.min(b), a.max(b));
                if hi == 0 {
                    1.0
                } else {
                    lo as f64 / hi as f64
                }
            }
            InitScheme::Constant(c) => c,
        })
        .collect()
}

/// Equation 3 for a single pair.
#[allow(clippy::too_many_arguments)]
fn pair_update<O: Operator, S: crate::operators::ScoreLookup>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    u: NodeId,
    v: NodeId,
    prev: &S,
    scratch: &mut OpScratch,
) -> f64 {
    if cfg.pin_identical && u == v {
        return 1.0;
    }
    let out = op.term(ctx, g1.out_neighbors(u), g2.out_neighbors(v), prev, scratch);
    let inn = op.term(ctx, g1.in_neighbors(u), g2.in_neighbors(v), prev, scratch);
    let label = ctx.label_sim(u, v);
    let score = cfg.w_out * out + cfg.w_in * inn + cfg.w_label() * label;
    // Scores are mathematically confined to [0, 1]; clamp floating drift.
    score.clamp(0.0, 1.0)
}

/// Runs one full iteration over the maintained pairs; returns
/// `Δ = max |FSim^k − FSim^{k−1}|`.
#[allow(clippy::too_many_arguments)]
fn run_iteration<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    store: &PairStore,
    prev: &[f64],
    cur: &mut [f64],
) -> f64 {
    let view = store.view(prev);
    // Auto-degrade the worker count on small worklists: per-iteration
    // thread spawns would otherwise dominate (each worker should own at
    // least a few thousand pairs to amortize).
    let threads = cfg.threads.min((store.len() / 2048).max(1));
    if threads <= 1 {
        let mut scratch = OpScratch::new();
        let mut delta = 0.0f64;
        for (slot, &(u, v)) in store.pairs.iter().enumerate() {
            let s = pair_update(g1, g2, ctx, cfg, op, u, v, &view, &mut scratch);
            let d = (s - prev[slot]).abs();
            if d > delta {
                delta = d;
            }
            cur[slot] = s;
        }
        return delta;
    }
    let cfg = &{
        let mut c = cfg.clone();
        c.threads = threads;
        c
    };

    // Parallel path: the current-iteration buffer is split into disjoint
    // chunks handed out through a work queue, so threads never alias and the
    // result is bitwise identical to the sequential path (each pair's score
    // depends only on `prev`).
    let chunk_size = (store.len() / (cfg.threads * 8)).max(256);
    let mut work: Vec<(usize, &mut [f64])> = Vec::new();
    {
        let mut rest = cur;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk_size.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            work.push((start, head));
            start += take;
            rest = tail;
        }
    }
    let queue = Mutex::new(work);
    let global_delta = Mutex::new(0.0f64);
    crossbeam::thread::scope(|scope| {
        for _ in 0..cfg.threads {
            scope.spawn(|_| {
                let mut scratch = OpScratch::new();
                let mut local_delta = 0.0f64;
                loop {
                    let item = queue.lock().pop();
                    let Some((start, chunk)) = item else { break };
                    for (off, slot_score) in chunk.iter_mut().enumerate() {
                        let slot = start + off;
                        let (u, v) = store.pairs[slot];
                        let s = pair_update(g1, g2, ctx, cfg, op, u, v, &view, &mut scratch);
                        let d = (s - prev[slot]).abs();
                        if d > local_delta {
                            local_delta = d;
                        }
                        *slot_score = s;
                    }
                }
                let mut g = global_delta.lock();
                if local_delta > *g {
                    *g = local_delta;
                }
            });
        }
    })
    .expect("worker thread panicked");
    let d = *global_delta.lock();
    d
}

/// Convenience: computes all four variants of Table 2 for a pair list.
pub fn all_variants(
    g1: &Graph,
    g2: &Graph,
    base_cfg: &FsimConfig,
) -> Result<[(Variant, FsimResult); 4], ConfigError> {
    let mk = |variant: Variant| -> Result<(Variant, FsimResult), ConfigError> {
        let mut cfg = base_cfg.clone();
        cfg.variant = variant;
        Ok((variant, compute(g1, g2, &cfg)?))
    };
    Ok([
        mk(Variant::Simple)?,
        mk(Variant::DegreePreserving)?,
        mk(Variant::Bi)?,
        mk(Variant::Bijective)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatcherKind;
    use fsim_graph::examples::figure1;
    use fsim_graph::graph_from_parts;
    use fsim_labels::LabelFn;

    fn cfg(variant: Variant) -> FsimConfig {
        FsimConfig::new(variant).label_fn(LabelFn::Indicator)
    }

    #[test]
    fn trivial_identical_graphs_score_one_on_diagonal() {
        let g = graph_from_parts(&["a", "b", "c"], &[(0, 1), (1, 2)]);
        for v in Variant::ALL {
            let mut c = cfg(v);
            c.matcher = MatcherKind::Hungarian;
            let r = compute(&g, &g, &c).unwrap();
            for u in g.nodes() {
                let s = r.get(u, u).unwrap();
                assert!((s - 1.0).abs() < 1e-9, "variant {v}: FSim({u},{u}) = {s}");
            }
        }
    }

    #[test]
    fn figure1_table2_check_pattern() {
        let f = figure1();
        // Expected exact-simulation pattern from Table 2 (✓ = score 1).
        let expected: [(Variant, [bool; 4]); 4] = [
            (Variant::Simple, [false, true, true, true]),
            (Variant::DegreePreserving, [false, false, true, true]),
            (Variant::Bi, [false, true, false, true]),
            (Variant::Bijective, [false, false, false, true]),
        ];
        for (variant, row) in expected {
            let mut c = cfg(variant);
            c.matcher = MatcherKind::Hungarian; // exact mapping ⇒ exact P2
            let r = compute(&f.pattern, &f.data, &c).unwrap();
            for (i, &should_be_one) in row.iter().enumerate() {
                let s = r.get(f.u, f.v[i]).unwrap();
                if should_be_one {
                    assert!((s - 1.0).abs() < 1e-9, "{variant}: (u,v{}) = {s}, want 1", i + 1);
                } else {
                    assert!(s < 1.0 - 1e-9, "{variant}: (u,v{}) = {s}, want < 1", i + 1);
                }
            }
        }
    }

    #[test]
    fn figure1_fractional_scores_are_ordered_like_table2() {
        let f = figure1();
        let r = compute(&f.pattern, &f.data, &cfg(Variant::Bijective)).unwrap();
        let scores: Vec<f64> = f.v.iter().map(|&v| r.get(f.u, v).unwrap()).collect();
        // Table 2 row bj: 0.72 < 0.81 < 0.94 < 1.00 — monotone towards v4.
        assert!(scores[0] < scores[1]);
        assert!(scores[1] < scores[2]);
        assert!(scores[2] < scores[3]);
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let f = figure1();
        for v in Variant::ALL {
            let r = compute(&f.pattern, &f.data, &cfg(v)).unwrap();
            for (_, _, s) in r.iter_pairs() {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn bi_and_bijective_are_symmetric_p3() {
        // P3: converse-invariant variants must be symmetric. Compare
        // FSim(G1→G2) with FSim(G2→G1) transposed.
        let f = figure1();
        for variant in [Variant::Bi, Variant::Bijective] {
            let c = cfg(variant);
            let fwd = compute(&f.pattern, &f.data, &c).unwrap();
            let bwd = compute(&f.data, &f.pattern, &c).unwrap();
            for u in f.pattern.nodes() {
                for v in f.data.nodes() {
                    let a = fwd.get(u, v).unwrap();
                    let b = bwd.get(v, u).unwrap();
                    assert!((a - b).abs() < 1e-9, "{variant}: asym at ({u},{v}): {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let f = figure1();
        for variant in Variant::ALL {
            let seq = compute(&f.pattern, &f.data, &cfg(variant)).unwrap();
            let par = compute(&f.pattern, &f.data, &cfg(variant).threads(4)).unwrap();
            assert_eq!(seq.pair_count(), par.pair_count());
            for ((u1, v1, s1), (u2, v2, s2)) in seq.iter_pairs().zip(par.iter_pairs()) {
                assert_eq!((u1, v1), (u2, v2));
                assert_eq!(s1, s2, "{variant}: parallel diverged at ({u1},{v1})");
            }
        }
    }

    #[test]
    fn converges_within_corollary1_bound() {
        let f = figure1();
        let c = cfg(Variant::Simple);
        let r = compute(&f.pattern, &f.data, &c).unwrap();
        assert!(r.converged, "must converge within ⌈log_w ε⌉ iterations");
        assert!(r.iterations <= c.iteration_bound());
    }

    #[test]
    fn delta_shrinks_geometrically() {
        // Theorem 1: Δ_{k+1} ≤ (w⁺+w⁻) Δ_k. Run with increasing caps and
        // check the reported deltas decrease.
        let f = figure1();
        let mut prev_delta = f64::INFINITY;
        for k in 1..=6 {
            let mut c = cfg(Variant::Bi);
            c.max_iters = Some(k);
            c.epsilon = 1e-12;
            let r = compute(&f.pattern, &f.data, &c).unwrap();
            assert!(
                r.final_delta <= prev_delta + 1e-12,
                "delta grew at k={k}: {} > {prev_delta}",
                r.final_delta
            );
            prev_delta = r.final_delta;
        }
    }

    #[test]
    fn theta_pruning_keeps_scores_close() {
        let f = figure1();
        let full = compute(&f.pattern, &f.data, &cfg(Variant::Simple)).unwrap();
        let pruned = compute(&f.pattern, &f.data, &cfg(Variant::Simple).theta(1.0)).unwrap();
        assert!(pruned.pair_count() < full.pair_count());
        // Maintained pairs still score within [0,1] and exact pairs stay 1.
        let s = pruned.get(f.u, f.v[3]).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_pruning_is_sound() {
        let f = figure1();
        let full = compute(&f.pattern, &f.data, &cfg(Variant::Bijective)).unwrap();
        let mut c = cfg(Variant::Bijective).upper_bound(0.0, 0.5);
        c.theta = 0.0;
        let pruned = compute(&f.pattern, &f.data, &c).unwrap();
        // Every pair the pruned run keeps must have a full-run score no
        // larger than its upper bound; in particular (u, v4) must stay 1.
        assert!((pruned.get(f.u, f.v[3]).unwrap() - 1.0).abs() < 1e-9);
        assert!(pruned.pair_count() <= full.pair_count());
    }

    #[test]
    fn score_on_demand_serves_pruned_pairs() {
        let f = figure1();
        let c = cfg(Variant::Simple).theta(1.0);
        let r = compute(&f.pattern, &f.data, &c).unwrap();
        // A cross-label pair is pruned but can still be evaluated on demand.
        let hex_in_pattern = 1u32; // first hex child of u
        assert_eq!(r.get(hex_in_pattern, f.v[0]), None);
        let s = score_on_demand(&f.pattern, &f.data, &c, &r, hex_in_pattern, f.v[0]);
        assert!((0.0..=1.0).contains(&s));
        // Maintained pairs are returned as stored.
        let direct = r.get(f.u, f.v[3]).unwrap();
        assert_eq!(score_on_demand(&f.pattern, &f.data, &c, &r, f.u, f.v[3]), direct);
    }

    #[test]
    fn separate_interners_are_merged() {
        let g1 = graph_from_parts(&["a", "b"], &[(0, 1)]);
        let g2 = graph_from_parts(&["a", "b"], &[(0, 1)]); // different interner
        let r = compute(&g1, &g2, &cfg(Variant::Simple)).unwrap();
        assert!((r.get(0, 0).unwrap() - 1.0).abs() < 1e-9);
        assert!((r.get(1, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g1 = graph_from_parts(&[], &[]);
        let g2 = graph_from_parts(&["a"], &[]);
        let r = compute(&g1, &g2, &cfg(Variant::Simple)).unwrap();
        assert_eq!(r.pair_count(), 0);
        assert!(r.converged);
    }
}
