//! Candidate-pair enumeration (Algorithm 1, Line 1) and the static upper
//! bound of §3.4.
//!
//! Three regimes:
//! * default (θ = 0, no pruning): all `|V1| × |V2|` pairs, dense index;
//! * θ-pruning: only pairs with `L(u, v) ≥ θ` (joined per label bucket);
//! * upper-bound pruning: additionally drop pairs with `ub(u, v) ≤ β`,
//!   remembering `α·ub` for dropped pairs when `α > 0`.

use crate::config::FsimConfig;
use crate::engine::parallel::Runtime;
use crate::operators::{OpCtx, Operator};
use crate::store::{Fallback, PairIndex, PairStore};
use fsim_graph::{pair_key, FxHashMap, Graph, NodeId};
use std::sync::Mutex;

/// Minimum candidate pairs per worker before bound evaluation parallelizes
/// (below this, dispatch overhead dominates the `O(1)` bound arithmetic).
const UB_PAR_GRAIN: usize = 4096;

/// The static upper bound of Equation 6:
/// `ub(u,v) = λ⁺ + λ⁻ + (1 − w⁺ − w⁻)·L(u,v)` with
/// `λˢ = wˢ·|Mχ|/Ωχ` (full weight when the neighbor condition is vacuous).
pub fn static_upper_bound<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    u: NodeId,
    v: NodeId,
) -> f64 {
    let lambda = |s1: &[NodeId], s2: &[NodeId], w: f64| -> f64 {
        if op.vacuous(s1.len(), s2.len()) {
            return w;
        }
        let omega = op.omega(s1.len(), s2.len());
        if omega <= 0.0 {
            return 0.0;
        }
        w * op.map_size(ctx, s1, s2) as f64 / omega
    };
    let out = lambda(g1.out_neighbors(u), g2.out_neighbors(v), cfg.w_out);
    let inn = lambda(g1.in_neighbors(u), g2.in_neighbors(v), cfg.w_in);
    out + inn + cfg.w_label() * ctx.label_sim(u, v)
}

/// Enumerates the maintained candidate pairs for `cfg`, sequentially.
pub fn enumerate_candidates<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
) -> PairStore {
    enumerate_candidates_with(g1, g2, ctx, cfg, op, None)
}

/// [`enumerate_candidates`] with an optional session [`Runtime`]: when a
/// pool is supplied and the candidate base is large enough, the §3.4 bound
/// evaluation is chunked across its workers (bitwise identical to the
/// sequential path — chunks are merged in worker order and the α·ub map is
/// keyed, so chunking cannot reorder an observable).
pub(crate) fn enumerate_candidates_with<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    rt: Option<&Runtime>,
) -> PairStore {
    let base: Vec<(NodeId, NodeId)> = if cfg.theta > 0.0 {
        theta_candidates(g1, g2, ctx, cfg.theta)
    } else {
        (0..g1.node_count() as u32)
            .flat_map(|u| (0..g2.node_count() as u32).map(move |v| (u, v)))
            .collect()
    };

    match cfg.upper_bound {
        None => {
            let full = g1.node_count() * g2.node_count();
            if cfg.theta > 0.0 && base.len() < full {
                sparse_store(base, Fallback::Zero)
            } else {
                // θ = 0, or θ-filtering kept everything (e.g. a permissive
                // label function): the dense row-major index applies.
                let mut pairs = base;
                pairs.sort_unstable();
                PairStore {
                    pairs,
                    index: PairIndex::Dense {
                        n2: g2.node_count() as u32,
                    },
                    fallback: Fallback::Zero,
                }
            }
        }
        Some(ub_cfg) => {
            // The bound evaluation is embarrassingly parallel over the
            // candidate pairs; chunk it across the session's worker pool
            // when one is available and the base is big enough to pay for
            // the dispatch.
            type UbChunk = (Vec<(NodeId, NodeId)>, Vec<(u64, f32)>);
            let eval_slice = |slice: &[(NodeId, NodeId)]| -> UbChunk {
                let mut kept = Vec::new();
                let mut dropped = Vec::new();
                for &(u, v) in slice {
                    let ub = static_upper_bound(g1, g2, ctx, cfg, op, u, v);
                    if ub > ub_cfg.beta {
                        kept.push((u, v));
                    } else if ub_cfg.alpha > 0.0 {
                        dropped.push((pair_key(u, v), (ub_cfg.alpha * ub) as f32));
                    }
                }
                (kept, dropped)
            };
            let workers = rt
                .map(|r| r.threads())
                .unwrap_or(1)
                .min((base.len() / UB_PAR_GRAIN).max(1));
            let results: Vec<UbChunk> = if workers > 1 {
                let rt = rt.expect("workers > 1 implies a runtime");
                let chunk = base.len().div_ceil(workers).max(1);
                let slots: Vec<Mutex<UbChunk>> = base
                    .chunks(chunk)
                    .map(|_| Mutex::new((Vec::new(), Vec::new())))
                    .collect();
                rt.run(&|wid, _state| {
                    let start = wid * chunk;
                    if start < base.len() {
                        let slice = &base[start..(start + chunk).min(base.len())];
                        *slots[wid].lock().expect("ub slot") = eval_slice(slice);
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("ub slot"))
                    .collect()
            } else {
                vec![eval_slice(&base)]
            };
            let mut kept = Vec::new();
            let mut dropped: FxHashMap<u64, f32> = FxHashMap::default();
            for (k, d) in results {
                kept.extend(k);
                dropped.extend(d);
            }
            if cfg.theta <= 0.0 && kept.len() == g1.node_count() * g2.node_count() {
                // The bound pruned nothing: keep the dense fast path
                // instead of paying hashed lookups for a full cross
                // product.
                kept.sort_unstable();
                return PairStore {
                    pairs: kept,
                    index: PairIndex::Dense {
                        n2: g2.node_count() as u32,
                    },
                    fallback: Fallback::AlphaUb(dropped),
                };
            }
            sparse_store(kept, Fallback::AlphaUb(dropped))
        }
    }
}

/// Upper bound on the number of pair-dependency entries the candidate set
/// would materialize (`Σ_{(u,v)∈H} d⁺(u)·d⁺(v) + d⁻(u)·d⁻(v)`, i.e. every
/// neighbor pair before θ-prefiltering). One `O(|H|)` pass over degree
/// arrays — used to decide whether the dependency CSR fits the configured
/// memory budget *without* paying the build.
pub fn estimated_dep_entries(g1: &Graph, g2: &Graph, store: &PairStore) -> u128 {
    let mut total: u128 = 0;
    for &(u, v) in &store.pairs {
        let out = g1.out_degree(u) as u128 * g2.out_degree(v) as u128;
        let inn = g1.in_degree(u) as u128 * g2.in_degree(v) as u128;
        total += out + inn;
    }
    total
}

/// Sentinel slot value in [`StoreRepair`] remap tables: removed / added.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// The outcome of an incremental candidate-store repair: the repaired
/// store plus the slot remapping that lets store-lifetime caches (the
/// dependency CSR, label terms, score trajectories) carry surviving slots
/// over instead of being rebuilt.
#[derive(Debug)]
pub(crate) struct StoreRepair {
    /// The repaired store.
    pub store: PairStore,
    /// Old slot → new slot ([`NO_SLOT`] for removed pairs). Length = old
    /// pair count.
    pub old_to_new: Vec<u32>,
    /// New slot → old slot ([`NO_SLOT`] for added pairs). Length = new
    /// pair count.
    pub new_to_old: Vec<u32>,
    /// Pairs that left the maintained set.
    pub removed_pairs: Vec<(NodeId, NodeId)>,
    /// Pairs that entered the maintained set.
    pub added_pairs: Vec<(NodeId, NodeId)>,
}

impl StoreRepair {
    /// Whether the maintained pair set (and hence the slot numbering)
    /// survived the repair unchanged.
    pub fn membership_unchanged(&self) -> bool {
        self.removed_pairs.is_empty() && self.added_pairs.is_empty()
    }
}

/// Incrementally repairs a candidate store after a graph edit:
/// re-enumerates membership only for the *dirty region* — pairs `(u, v)`
/// with `u ∈ dirty_left` or `v ∈ dirty_right` — and carries every other
/// slot over unchanged. Under α-substituted pruning the fallback constants
/// of the dirty region are refreshed in place.
///
/// `g1` / `g2` / `ctx` must already reflect the edited graphs. The
/// resulting store resolves every pair exactly like a fresh
/// [`enumerate_candidates`] on the edited graphs (the index representation
/// may differ — e.g. a dense store that loses pairs becomes sparse — but
/// pair order, scores and fallback semantics are identical).
#[allow(clippy::too_many_arguments)]
pub(crate) fn repair_candidates<O: Operator>(
    g1: &Graph,
    g2: &Graph,
    ctx: &OpCtx<'_>,
    cfg: &FsimConfig,
    op: &O,
    old: PairStore,
    dirty_left: &fsim_graph::FxHashSet<NodeId>,
    dirty_right: &fsim_graph::FxHashSet<NodeId>,
) -> StoreRepair {
    let old_len = old.len();
    if dirty_left.is_empty() && dirty_right.is_empty() {
        return StoreRepair {
            old_to_new: (0..old_len as u32).collect(),
            new_to_old: (0..old_len as u32).collect(),
            removed_pairs: Vec::new(),
            added_pairs: Vec::new(),
            store: old,
        };
    }
    let (n1, n2) = (g1.node_count() as u32, g2.node_count() as u32);
    // Re-enumerate the dirty region with exactly the predicate of
    // `enumerate_candidates`: the θ base filter, then the upper bound.
    let mut desired: Vec<(NodeId, NodeId)> = Vec::new();
    let mut dropped_new: Vec<(u64, f32)> = Vec::new();
    {
        let mut eval = |u: NodeId, v: NodeId| {
            if cfg.theta > 0.0 && ctx.label_sim(u, v) < cfg.theta {
                return;
            }
            match cfg.upper_bound {
                None => desired.push((u, v)),
                Some(ub_cfg) => {
                    let ub = static_upper_bound(g1, g2, ctx, cfg, op, u, v);
                    if ub > ub_cfg.beta {
                        desired.push((u, v));
                    } else if ub_cfg.alpha > 0.0 {
                        dropped_new.push((pair_key(u, v), (ub_cfg.alpha * ub) as f32));
                    }
                }
            }
        };
        for &u in dirty_left {
            for v in 0..n2 {
                eval(u, v);
            }
        }
        for &v in dirty_right {
            for u in 0..n1 {
                if !dirty_left.contains(&u) {
                    eval(u, v);
                }
            }
        }
    }
    desired.sort_unstable();

    // Merge: surviving clean pairs (ordered, with their old slots) with the
    // re-enumerated dirty region (old slot recovered via the old index).
    let in_region =
        |&(u, v): &(NodeId, NodeId)| dirty_left.contains(&u) || dirty_right.contains(&v);
    let mut new_pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(old_len);
    let mut new_to_old: Vec<u32> = Vec::with_capacity(old_len);
    let mut old_to_new: Vec<u32> = vec![NO_SLOT; old_len];
    let mut removed_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut added_pairs: Vec<(NodeId, NodeId)> = Vec::new();
    {
        let mut clean = old
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| !in_region(p))
            .map(|(i, &p)| (p, i as u32))
            .peekable();
        let mut dirty = desired.iter().copied().peekable();
        loop {
            let take_clean = match (clean.peek(), dirty.peek()) {
                (Some(&(cp, _)), Some(&dp)) => cp < dp,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_clean {
                let (p, old_slot) = clean.next().unwrap();
                old_to_new[old_slot as usize] = new_pairs.len() as u32;
                new_to_old.push(old_slot);
                new_pairs.push(p);
            } else {
                let (u, v) = dirty.next().unwrap();
                match old.index.get(u, v) {
                    Some(old_slot) if old_slot < old_len => {
                        old_to_new[old_slot] = new_pairs.len() as u32;
                        new_to_old.push(old_slot as u32);
                    }
                    _ => {
                        added_pairs.push((u, v));
                        new_to_old.push(NO_SLOT);
                    }
                }
                new_pairs.push((u, v));
            }
        }
    }
    for (old_slot, &mapped) in old_to_new.iter().enumerate() {
        if mapped == NO_SLOT {
            removed_pairs.push(old.pairs[old_slot]);
        }
    }

    // Refresh the α·ub constants of the dirty region (the bound values of
    // clean pairs are untouched by construction of the dirty sets).
    let fallback = match old.fallback {
        Fallback::Zero => Fallback::Zero,
        Fallback::AlphaUb(mut map) => {
            for &u in dirty_left {
                for v in 0..n2 {
                    map.remove(&pair_key(u, v));
                }
            }
            for &v in dirty_right {
                for u in 0..n1 {
                    if !dirty_left.contains(&u) {
                        map.remove(&pair_key(u, v));
                    }
                }
            }
            map.extend(dropped_new);
            Fallback::AlphaUb(map)
        }
    };

    let index = if removed_pairs.is_empty() && added_pairs.is_empty() {
        old.index // slot numbering survived
    } else {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        map.reserve(new_pairs.len());
        for (i, &(u, v)) in new_pairs.iter().enumerate() {
            map.insert(pair_key(u, v), i as u32);
        }
        PairIndex::Sparse(map)
    };

    StoreRepair {
        store: PairStore {
            pairs: new_pairs,
            index,
            fallback,
        },
        old_to_new,
        new_to_old,
        removed_pairs,
        added_pairs,
    }
}

fn sparse_store(mut pairs: Vec<(NodeId, NodeId)>, fallback: Fallback) -> PairStore {
    pairs.sort_unstable();
    pairs.dedup();
    let mut map: FxHashMap<u64, u32> = FxHashMap::default();
    map.reserve(pairs.len());
    for (i, &(u, v)) in pairs.iter().enumerate() {
        map.insert(pair_key(u, v), i as u32);
    }
    PairStore {
        pairs,
        index: PairIndex::Sparse(map),
        fallback,
    }
}

/// Pairs with `L(u, v) ≥ θ`, enumerated per label-bucket pair so that the
/// common indicator/θ=1 case costs `Σ_l |bucket1(l)|·|bucket2(l)|` instead of
/// `|V1|·|V2|`.
fn theta_candidates(g1: &Graph, g2: &Graph, ctx: &OpCtx<'_>, theta: f64) -> Vec<(NodeId, NodeId)> {
    let buckets1 = g1.label_buckets();
    let buckets2 = g2.label_buckets();
    let used1 = g1.used_labels();
    let used2 = g2.used_labels();
    let mut pairs = Vec::new();
    for &l1 in &used1 {
        for &l2 in &used2 {
            if ctx.label_eval.sim(l1, l2) >= theta {
                for &u in &buckets1[l1.index()] {
                    for &v in &buckets2[l2.index()] {
                        pairs.push((u, v));
                    }
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FsimConfig, Variant};
    use crate::operators::{LabelEval, VariantOp};
    use fsim_graph::{GraphBuilder, LabelInterner};
    use fsim_labels::LabelFn;
    use std::sync::Arc;

    fn two_graphs() -> (Graph, Graph) {
        let i = LabelInterner::shared();
        let mut b1 = GraphBuilder::with_interner(Arc::clone(&i));
        let a = b1.add_node("A");
        let b = b1.add_node("B");
        b1.add_edge(a, b);
        let mut b2 = GraphBuilder::with_interner(i);
        let x = b2.add_node("A");
        let y = b2.add_node("B");
        let z = b2.add_node("C");
        b2.add_edge(x, y);
        b2.add_edge(x, z);
        (b1.build(), b2.build())
    }

    fn ctx<'a>(g1: &'a Graph, g2: &'a Graph, eval: &'a LabelEval, theta: f64) -> OpCtx<'a> {
        OpCtx {
            labels1: g1.labels(),
            labels2: g2.labels(),
            label_eval: eval,
            theta,
        }
    }

    #[test]
    fn default_enumeration_is_dense_cross_product() {
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let store = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        assert_eq!(store.len(), 6);
        assert!(matches!(store.index, PairIndex::Dense { .. }));
    }

    #[test]
    fn theta_one_keeps_same_label_pairs_only() {
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple).theta(1.0);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let store = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        // A–A and B–B only.
        assert_eq!(store.pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn upper_bound_is_a_valid_bound_at_one_for_equal_pairs() {
        let (g1, _) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple);
        let c = ctx(&g1, &g1, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        // A node compared to itself must have ub = 1.
        for u in g1.nodes() {
            let ub = static_upper_bound(&g1, &g1, &c, &cfg, &op, u, u);
            assert!((ub - 1.0).abs() < 1e-9, "ub({u},{u}) = {ub}");
        }
    }

    #[test]
    fn beta_pruning_drops_low_bound_pairs() {
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple).upper_bound(0.2, 0.99);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let store = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        assert!(store.len() < 6, "beta=0.99 should prune something");
        match &store.fallback {
            Fallback::AlphaUb(map) => {
                assert_eq!(
                    map.len() + store.len(),
                    6,
                    "alpha>0 stores every dropped pair"
                )
            }
            Fallback::Zero => panic!("expected AlphaUb fallback"),
        }
    }

    #[test]
    fn repair_matches_fresh_enumeration_after_relabel() {
        use fsim_graph::FxHashSet;
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple).theta(1.0);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let old = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        // Relabel node 2 of g2 from "C" to "A": row membership of column 2
        // changes (pairs (u, 2) with label A become eligible).
        let a_id = g2.interner().get("A").unwrap();
        let g2_new = g2.with_edits(&[], &[], &[(2, a_id)]);
        let c_new = ctx(&g1, &g2_new, &eval, cfg.theta);
        let dirty_right: FxHashSet<u32> = [2u32].into_iter().collect();
        let repair = repair_candidates(
            &g1,
            &g2_new,
            &c_new,
            &cfg,
            &op,
            old,
            &FxHashSet::default(),
            &dirty_right,
        );
        let fresh = enumerate_candidates(&g1, &g2_new, &c_new, &cfg, &op);
        assert_eq!(repair.store.pairs, fresh.pairs);
        assert_eq!(repair.added_pairs, vec![(0, 2)]);
        assert!(repair.removed_pairs.is_empty());
        // Surviving slots map consistently.
        for (old_slot, &new_slot) in repair.old_to_new.iter().enumerate() {
            assert_ne!(new_slot, NO_SLOT);
            assert_eq!(repair.new_to_old[new_slot as usize] as usize, old_slot);
        }
    }

    #[test]
    fn empty_dirty_sets_are_identity() {
        use fsim_graph::FxHashSet;
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let old = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        let pairs_before = old.pairs.clone();
        let repair = repair_candidates(
            &g1,
            &g2,
            &c,
            &cfg,
            &op,
            old,
            &FxHashSet::default(),
            &FxHashSet::default(),
        );
        assert!(repair.membership_unchanged());
        assert_eq!(repair.store.pairs, pairs_before);
        assert!(repair
            .old_to_new
            .iter()
            .enumerate()
            .all(|(i, &m)| m == i as u32));
    }

    #[test]
    fn alpha_zero_stores_nothing_for_dropped() {
        let (g1, g2) = two_graphs();
        let eval = LabelEval::Sim(LabelFn::Indicator.prepare(g1.interner()));
        let cfg = FsimConfig::new(Variant::Simple).upper_bound(0.0, 0.99);
        let c = ctx(&g1, &g2, &eval, cfg.theta);
        let op = VariantOp::new(Variant::Simple);
        let store = enumerate_candidates(&g1, &g2, &c, &cfg, &op);
        match &store.fallback {
            Fallback::AlphaUb(map) => assert!(map.is_empty()),
            Fallback::Zero => panic!("expected AlphaUb fallback"),
        }
    }
}
