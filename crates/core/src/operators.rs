//! Mapping (`Mχ`) and normalizing (`Ωχ`) operators — Equation 2 and
//! Table 3 of the paper.
//!
//! Each operator computes, for two neighbor sets `S1 ⊆ V1` and `S2 ⊆ V2`,
//! the *maximum mapping* sum `Σ_{(x,y)∈Mχ} FSim^{k−1}(x, y)` (condition C3
//! of Theorem 1), the score-independent mapping size `|Mχ|` (conditions
//! C1/C2, also used by the static upper bound of §3.4), and the normalizer
//! `Ωχ`.
//!
//! The label constraint of Remark 2 (`L(x, y) ≥ θ` for every mapped pair) is
//! enforced inside every operator via [`OpCtx::eligible`].

use crate::config::{MatcherKind, Variant};
use fsim_graph::{LabelId, NodeId};
use fsim_labels::PreparedLabelSim;
use fsim_matching::{hungarian_max_weight, GreedyMatcher};

/// Label-term evaluation resolved for the engine hot loop.
#[derive(Debug, Clone)]
pub enum LabelEval {
    /// Look up the prepared similarity of the two interned labels.
    Sim(PreparedLabelSim),
    /// Constant for every pair (SimRank: 0, RoleSim: 1).
    Constant(f64),
}

impl LabelEval {
    /// `L` applied to two label ids.
    #[inline]
    pub fn sim(&self, a: LabelId, b: LabelId) -> f64 {
        match self {
            LabelEval::Sim(p) => p.sim(a, b),
            LabelEval::Constant(c) => *c,
        }
    }
}

/// Evaluation context shared by operators: node labels of both graphs, the
/// label function, and θ.
pub struct OpCtx<'a> {
    /// Node labels of `G1`.
    pub labels1: &'a [LabelId],
    /// Node labels of `G2`.
    pub labels2: &'a [LabelId],
    /// The label function.
    pub label_eval: &'a LabelEval,
    /// Mapping threshold θ.
    pub theta: f64,
}

impl<'a> OpCtx<'a> {
    /// `L(ℓ1(x), ℓ2(y))`.
    #[inline]
    pub fn label_sim(&self, x: NodeId, y: NodeId) -> f64 {
        self.label_eval
            .sim(self.labels1[x as usize], self.labels2[y as usize])
    }

    /// The Remark-2 constraint: may `x` be mapped to `y`?
    #[inline]
    pub fn eligible(&self, x: NodeId, y: NodeId) -> bool {
        self.label_sim(x, y) >= self.theta
    }
}

/// Read-only access to the previous iteration's scores, including the
/// configured fallback for non-maintained pairs (0 under θ-pruning,
/// `α·ub` under upper-bound pruning).
pub trait ScoreLookup {
    /// `FSim^{k−1}(x, y)`.
    fn get(&self, x: NodeId, y: NodeId) -> f64;
}

/// One prepared dependency of a pair's Equation-3 update: neighbor pair
/// `(x, y)` with `x` at position `i` of `S1` and `y` at position `j` of
/// `S2`, resolved at session-prepare time to either the slot holding its
/// score or (for pairs pruned from the maintained set) the constant the
/// fallback serves. Lists are θ-eligibility prefiltered and grouped by
/// `i` in ascending order; within each `i` group, slot-backed entries come
/// first in `j` order with constant entries appended at the group's tail
/// (for `all_pairs` operators the group keeps plain `(i, j)` order — see
/// `deps.rs`). The slot-based operator paths are therefore pure index
/// arithmetic — no `PairIndex` lookups or `L(x, y) ≥ θ` re-checks per
/// iteration.
///
/// Pairs whose fallback constant is `0` are omitted entirely: a zero can
/// neither win a max, enter a positive-weight matching, nor change a sum.
// `repr(C)` pins the field order and (with four 4-byte fields) a
// padding-free 16-byte layout, matching the spill wire format so a
// retained spill mapping can reborrow entry columns in place on
// little-endian targets (`deps::MappedShardCsr`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct DepEntry {
    /// Position of `x` within `S1`.
    pub i: u32,
    /// Position of `y` within `S2`.
    pub j: u32,
    /// Score-buffer slot of `(x, y)`, or [`DepEntry::CONST`].
    pub slot: u32,
    /// The fallback constant, read when `slot == CONST`.
    pub cval: f32,
}

impl DepEntry {
    /// Sentinel slot marking a constant (non-maintained) dependency.
    pub const CONST: u32 = u32::MAX;

    /// The dependency's value under the previous iteration's scores.
    #[inline]
    pub fn value(&self, prev: &[f64]) -> f64 {
        if self.slot == Self::CONST {
            self.cval as f64
        } else {
            prev[self.slot as usize]
        }
    }
}

/// Reusable per-worker scratch buffers for the slot kernels and the
/// injective operators. Owned by the session runtime's workers (one per
/// worker thread, surviving across iterations, runs and shard visits —
/// see `engine/parallel.rs`) and by every sequential evaluation loop.
#[derive(Debug, Default)]
pub struct OpScratch {
    edges: Vec<(f64, u32, u32)>,
    weights: Vec<f64>,
    best_right: Vec<f64>,
    /// Gathered dependency values (the vectorized kernels' SoA staging
    /// buffer: one `f64` per [`DepEntry`], materialized branch-free).
    vals: Vec<f64>,
    matcher: GreedyMatcher,
}

impl OpScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Forces the engine onto the scalar reference strategy — the exact
/// pre-vectorization code paths — process-wide.
///
/// Under the toggle, full sweeps evaluate on the fly (neighbor
/// enumeration + hash-map score lookups, no dependency CSR for
/// `ConvergenceMode::FullSweep`) and [`SimRankOp`] uses its ungathered
/// serial lane loop instead of the gather + packed-lane-add kernel. The
/// variant operators' per-slot scalar loops are unaffected: they *are*
/// the fastest kernels measured for their access pattern and run
/// unconditionally (see the kernel commentary below).
///
/// The toggle exists for the equivalence property tests
/// (`tests/kernel_equivalence.rs`) and the `convergence` bench, which
/// measure both strategies on one build and pin their bitwise
/// equality. It is **not** a tuning knob.
pub fn force_scalar_kernel(on: bool) {
    FORCE_SCALAR_KERNEL.store(on, std::sync::atomic::Ordering::Release);
}

/// Whether [`force_scalar_kernel`] is currently set.
pub fn scalar_kernel_forced() -> bool {
    FORCE_SCALAR_KERNEL.load(std::sync::atomic::Ordering::Acquire)
}

static FORCE_SCALAR_KERNEL: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// A χ-simulation operator pair `(Mχ, Ωχ)`.
///
/// Implementations must satisfy the Theorem-1 conditions: `map_size` and
/// `omega` are independent of iteration state (C1), `map_size ≤ omega`
/// whenever not vacuous (C2), and `map_sum` realizes the *maximum* mapping
/// (C3) — exactly for `s`/`b`, greedily (the paper's approximation) for
/// `dp`/`bj`.
///
/// Built-in operators: [`VariantOp`] (the paper's four variants) and
/// [`SimRankOp`] (the §4.3 SimRank configuration). Custom operators plug
/// into the one-shot and session entry points:
///
/// ```
/// use fsim_core::{compute_with_operator, simrank_via_framework, SimRankOp};
/// use fsim_core::presets::simrank_config;
/// use fsim_graph::graph_from_parts;
///
/// let g = graph_from_parts(&["x", "y", "x"], &[(1, 0), (1, 2)]);
/// let result = compute_with_operator(&g, &g, &simrank_config(0.6, 1e-4), &SimRankOp).unwrap();
/// // Nodes 0 and 2 share their only in-neighbor: SimRank(0,2) = C.
/// assert!((result.get(0, 2).unwrap() - 0.6).abs() < 1e-9);
/// ```
pub trait Operator: Send + Sync {
    /// Re-derives any configuration-dependent state after an
    /// [`FsimEngine::rerun`](crate::engine::FsimEngine::rerun)
    /// reconfiguration (e.g. [`VariantOp`] picks up a changed variant or
    /// matcher). Operators without configuration state keep the default
    /// no-op.
    fn sync_cfg(&mut self, _cfg: &crate::config::FsimConfig) {}

    /// Maximum-mapping sum `Σ_{(x,y)∈Mχ(S1,S2)} prev(x, y)`.
    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64;

    /// Whether the operator implements [`map_sum_slots`](Self::map_sum_slots)
    /// over prepared dependency lists. Operators answering `false` keep the
    /// engine on the on-the-fly [`map_sum`](Self::map_sum) sweep.
    fn supports_slots(&self) -> bool {
        false
    }

    /// Whether the prepared dependency lists must also contain pairs that
    /// fail the Remark-2 eligibility constraint `L(x, y) ≥ θ`
    /// ([`SimRankOp`] reads *every* neighbor pair, eligible or not).
    fn reads_ineligible_pairs(&self) -> bool {
        false
    }

    /// Whether a run of constant entries inside one `i` group of a
    /// prepared dependency list may be folded into a single entry holding
    /// their maximum at CSR build time. Only sound for operators whose
    /// per-group reduction is a plain max (a max over an `f32`-exact
    /// constant run is order-insensitive and loses nothing) — answer
    /// `false` (the default) whenever individual constants carry weight,
    /// e.g. for sums, column-wise reductions, or injective matchings
    /// where each entry is a candidate edge.
    fn fold_const_rows(&self) -> bool {
        false
    }

    /// [`map_sum`](Self::map_sum) evaluated from a prepared dependency
    /// list (θ-prefiltered, `(i, j)`-sorted — see [`DepEntry`]) instead of
    /// raw neighbor sets. Must produce bitwise-identical results to
    /// `map_sum` under the same previous scores; the engine property-tests
    /// this equivalence. Only called when
    /// [`supports_slots`](Self::supports_slots) is `true`.
    fn map_sum_slots(
        &self,
        _entries: &[DepEntry],
        _len1: usize,
        _len2: usize,
        _prev: &[f64],
        _scratch: &mut OpScratch,
    ) -> f64 {
        unimplemented!("operator does not support slot-based evaluation")
    }

    /// The neighbor term of Equation 2 over a prepared dependency list —
    /// [`term`](Self::term) with `map_sum` replaced by
    /// [`map_sum_slots`](Self::map_sum_slots); `len1` / `len2` are the
    /// original neighbor-set sizes (they drive `Ωχ` and vacuity).
    fn term_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        if self.vacuous(len1, len2) {
            return 1.0;
        }
        let omega = self.omega(len1, len2);
        if omega <= 0.0 {
            return 0.0;
        }
        self.map_sum_slots(entries, len1, len2, prev, scratch) / omega
    }

    /// Score-independent upper bound on `|Mχ(S1, S2)|` (exact for `s`/`b`).
    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize;

    /// `Ωχ(S1, S2)` as a function of the set sizes.
    fn omega(&self, len1: usize, len2: usize) -> f64;

    /// Whether the underlying exact condition is *vacuously satisfied* for
    /// these sizes (the term then contributes its full weight; §4.4 of
    /// DESIGN.md).
    fn vacuous(&self, len1: usize, len2: usize) -> bool;

    /// The neighbor term of Equation 2 with the empty-set convention
    /// applied.
    fn term<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        if self.vacuous(s1.len(), s2.len()) {
            return 1.0;
        }
        let omega = self.omega(s1.len(), s2.len());
        if omega <= 0.0 {
            return 0.0;
        }
        self.map_sum(ctx, s1, s2, prev, scratch) / omega
    }
}

/// `Σ_{x∈S1} max_{y∈S2, eligible} prev(x, y)` — the `fs` mapping of Eq. 7.
fn sum_best_per_left<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
) -> f64 {
    let mut total = 0.0;
    for &x in s1 {
        let mut best = 0.0f64;
        for &y in s2 {
            if ctx.eligible(x, y) {
                let s = prev.get(x, y);
                if s > best {
                    best = s;
                }
            }
        }
        total += best;
    }
    total
}

/// `Σ_{y∈S2} max_{x∈S1, eligible} prev(x, y)` — the converse direction of
/// the `fb` mapping (scores stay oriented `G1 → G2`).
fn sum_best_per_right<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
) -> f64 {
    let mut total = 0.0;
    for &y in s2 {
        let mut best = 0.0f64;
        for &x in s1 {
            if ctx.eligible(x, y) {
                let s = prev.get(x, y);
                if s > best {
                    best = s;
                }
            }
        }
        total += best;
    }
    total
}

fn count_left_with_eligible(ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
    s1.iter()
        .filter(|&&x| s2.iter().any(|&y| ctx.eligible(x, y)))
        .count()
}

fn count_right_with_eligible(ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
    s2.iter()
        .filter(|&&y| s1.iter().any(|&x| ctx.eligible(x, y)))
        .count()
}

/// Maximum-weight injective mapping sum between `S1` and `S2`
/// (used by both `M_dp` and `M_bj`; they differ only in `Ω` and vacuity).
fn injective_sum<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
    scratch: &mut OpScratch,
    matcher: MatcherKind,
) -> f64 {
    if s1.is_empty() || s2.is_empty() {
        return 0.0;
    }
    match matcher {
        MatcherKind::Greedy => {
            scratch.edges.clear();
            for (i, &x) in s1.iter().enumerate() {
                for (j, &y) in s2.iter().enumerate() {
                    if ctx.eligible(x, y) {
                        let w = prev.get(x, y);
                        if w > 0.0 {
                            scratch.edges.push((w, i as u32, j as u32));
                        }
                    }
                }
            }
            let (sum, _) = scratch
                .matcher
                .assign(s1.len(), s2.len(), &mut scratch.edges);
            sum
        }
        MatcherKind::Hungarian => {
            // Orient so rows are the smaller side; ineligible pairs weigh 0
            // (they may be "assigned" but contribute nothing).
            let (rows, cols, transposed) = if s1.len() <= s2.len() {
                (s1, s2, false)
            } else {
                (s2, s1, true)
            };
            scratch.weights.clear();
            scratch.weights.resize(rows.len() * cols.len(), 0.0);
            for (i, &r) in rows.iter().enumerate() {
                for (j, &c) in cols.iter().enumerate() {
                    let (x, y) = if transposed { (c, r) } else { (r, c) };
                    if ctx.eligible(x, y) {
                        scratch.weights[i * cols.len() + j] = prev.get(x, y);
                    }
                }
            }
            let (sum, _) = hungarian_max_weight(rows.len(), cols.len(), &scratch.weights);
            sum
        }
    }
}

/// `Σ_x max_{eligible y} prev(x, y)` over a prepared dependency list.
///
/// Entries are `(i, j)`-sorted, so each left node's eligible targets are
/// consecutive; left nodes with no eligible target contribute exactly the
/// `0.0` the on-the-fly path adds for them, so they are simply absent.
fn slots_sum_best_per_left(entries: &[DepEntry], prev: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut idx = 0;
    while idx < entries.len() {
        let row = entries[idx].i;
        let mut best = 0.0f64;
        while idx < entries.len() && entries[idx].i == row {
            let s = entries[idx].value(prev);
            if s > best {
                best = s;
            }
            idx += 1;
        }
        total += best;
    }
    total
}

/// `Σ_y max_{eligible x} prev(x, y)` over a prepared dependency list (the
/// converse direction of the `fb` mapping). Accumulates per-column maxima
/// in scratch and sums columns in `j` order, reproducing the on-the-fly
/// path's iteration order bitwise (empty columns contribute `+0.0`).
fn slots_sum_best_per_right(
    entries: &[DepEntry],
    len2: usize,
    prev: &[f64],
    scratch: &mut OpScratch,
) -> f64 {
    let best = &mut scratch.best_right;
    best.clear();
    best.resize(len2, 0.0);
    for e in entries {
        let s = e.value(prev);
        if s > best[e.j as usize] {
            best[e.j as usize] = s;
        }
    }
    let mut total = 0.0;
    for &b in best.iter() {
        total += b;
    }
    total
}

/// Maximum-weight injective mapping sum over a prepared dependency list
/// (mirrors [`injective_sum`]; entry order equals the on-the-fly edge
/// enumeration order, so the greedy matcher sees an identical edge list).
fn slots_injective_sum(
    entries: &[DepEntry],
    len1: usize,
    len2: usize,
    prev: &[f64],
    scratch: &mut OpScratch,
    matcher: MatcherKind,
) -> f64 {
    if len1 == 0 || len2 == 0 {
        return 0.0;
    }
    match matcher {
        MatcherKind::Greedy => {
            scratch.edges.clear();
            for e in entries {
                let w = e.value(prev);
                if w > 0.0 {
                    scratch.edges.push((w, e.i, e.j));
                }
            }
            let (sum, _) = scratch.matcher.assign(len1, len2, &mut scratch.edges);
            sum
        }
        MatcherKind::Hungarian => {
            let (rows, cols, transposed) = if len1 <= len2 {
                (len1, len2, false)
            } else {
                (len2, len1, true)
            };
            scratch.weights.clear();
            scratch.weights.resize(rows * cols, 0.0);
            for e in entries {
                let (r, c) = if transposed { (e.j, e.i) } else { (e.i, e.j) };
                scratch.weights[r as usize * cols + c as usize] = e.value(prev);
            }
            let (sum, _) = hungarian_max_weight(rows, cols, &scratch.weights);
            sum
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized SimRank kernel
//
// The variant operators' per-slot scalar loops above *are* the fastest
// kernels we measured for their access pattern — row-segmented maxima over
// short dependency runs are latency-bound on the scattered score loads, and
// every gather-then-reduce restructuring we benchmarked (4-wide unrolled
// gather staging into an SoA buffer, two-pass reduce, interleaved
// multi-stream accumulation, software prefetch) came out 4–40% *slower* on
// the real delta workload. The vectorization that pays for the variant
// operators lives one level up: the engine routes full sweeps through the
// CSR's contiguous slot-indexed buffers (`run_sweep_slots`) instead of
// on-the-fly neighbor enumeration with hash-map score lookups, and the CSR
// build reorders each slot's entries and folds constant runs
// (`Operator::fold_const_rows`) so those loops stream forward.
//
// SimRank is the exception: its reduction is a plain sum over *every*
// neighbor pair — long, dense, branch-free — which is exactly the shape a
// 4-wide gather + packed lane adds wins on. The kernels below implement
// that pass; bitwise identity with the scalar reference holds because both
// commit to the same deterministic lane order (see
// [`simrank_lane_sum_slots`]), pinned by `tests/kernel_equivalence.rs`.
// ---------------------------------------------------------------------------

/// Materializes `entries[k].value(prev)` into `vals` (the gather pass),
/// 4-wide unrolled and branch-free — the min-clamp trick makes the slot
/// load unconditionally in-bounds, so the CONST select compiles to a cmov
/// and the four scattered score loads per step stay in flight together
/// instead of serializing behind per-entry bounds checks and CONST
/// branches.
#[inline]
fn gather_values(entries: &[DepEntry], prev: &[f64], vals: &mut Vec<f64>) {
    vals.clear();
    let Some(last) = prev.len().checked_sub(1) else {
        // Degenerate empty score buffer: keep the checked read, which
        // panics on a slot-backed entry exactly like the scalar path.
        vals.extend(entries.iter().map(|e| e.value(prev)));
        return;
    };
    vals.reserve(entries.len());
    let mut chunks = entries.chunks_exact(4);
    for chunk in &mut chunks {
        let mut out = [0.0f64; 4];
        for (o, e) in out.iter_mut().zip(chunk) {
            debug_assert!(e.slot == DepEntry::CONST || (e.slot as usize) <= last);
            // `min(last)` keeps the index in bounds for CONST entries (and
            // elides the bounds check); the select then overrides with the
            // constant. Branch-free on both counts.
            let from_slot = prev[(e.slot as usize).min(last)];
            *o = if e.slot == DepEntry::CONST {
                e.cval as f64
            } else {
                from_slot
            };
        }
        vals.extend_from_slice(&out);
    }
    for e in chunks.remainder() {
        debug_assert!(e.slot == DepEntry::CONST || (e.slot as usize) <= last);
        let from_slot = prev[(e.slot as usize).min(last)];
        vals.push(if e.slot == DepEntry::CONST {
            e.cval as f64
        } else {
            from_slot
        });
    }
}

/// 4-lane sum over a gathered value buffer whose position `m` feeds lane
/// `m & 3`: lane `k` accumulates `vals[k], vals[k+4], …` in stream order,
/// and the lanes combine as `(l0 + l1) + (l2 + l3)` — exactly the
/// deterministic tree order of [`simrank_lane_sum_slots`] when logical
/// positions are contiguous from 0.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn dense_lane_sum(vals: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = vals.chunks_exact(4);
    for c in &mut chunks {
        for k in 0..4 {
            lanes[k] += c[k];
        }
    }
    for (k, &v) in chunks.remainder().iter().enumerate() {
        lanes[k] += v;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// SSE2 variant of [`dense_lane_sum`] (the `simd` feature). SSE2 is
/// baseline on `x86_64`, so no runtime detection is needed. Each packed
/// `_mm_add_pd` performs the same per-lane addition, on the same addends
/// in the same order, as the portable loop — IEEE-754 addition is
/// deterministic, so the two paths are bitwise interchangeable; CI runs
/// the convergence bench smoke with the feature on and off and fails on
/// any divergence.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn dense_lane_sum(vals: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline; the loads are unaligned
    // loads from in-bounds slice positions.
    unsafe {
        let mut acc0 = _mm_setzero_pd(); // lanes 0, 1
        let mut acc1 = _mm_setzero_pd(); // lanes 2, 3
        let mut chunks = vals.chunks_exact(4);
        for c in &mut chunks {
            acc0 = _mm_add_pd(acc0, _mm_loadu_pd(c.as_ptr()));
            acc1 = _mm_add_pd(acc1, _mm_loadu_pd(c.as_ptr().add(2)));
        }
        let mut lanes = [0.0f64; 4];
        _mm_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm_storeu_pd(lanes.as_mut_ptr().add(2), acc1);
        for (k, &v) in chunks.remainder().iter().enumerate() {
            lanes[k] += v;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }
}

/// SimRank's deterministic 4-lane sum over a prepared dependency list.
///
/// Sums are order-*sensitive* in floating point, so SimRank cannot reuse
/// the scalar serial order and still vectorize. Instead both the scalar
/// and vectorized paths commit to one deterministic tree order: entry
/// `(i, j)` accumulates into lane `(i·len2 + j) mod 4` and the lanes
/// combine as `(l0 + l1) + (l2 + l3)`. Keying the lane on the *logical*
/// position (not the stream position) makes the order robust to omitted
/// zero-constant entries — `+0.0` on a non-negative accumulator is a
/// bitwise no-op — so the slot path and the on-the-fly [`map_sum`] sweep
/// agree bitwise, as do all shard layouts.
fn simrank_lane_sum_slots(entries: &[DepEntry], len2: usize, prev: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    for e in entries {
        lanes[(e.i as usize * len2 + e.j as usize) & 3] += e.value(prev);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Vectorized [`simrank_lane_sum_slots`]: gather pass, then the identical
/// per-lane accumulation sequence (entries stay in stream order, so each
/// lane sees the same addends in the same order — bitwise equal).
///
/// When the list is *dense* (`len1·len2` entries — no zero-constant pair
/// was omitted, the common SimRank case), logical position equals stream
/// position and the lane sum collapses to [`dense_lane_sum`] over the
/// contiguous gathered buffer, which is where the packed adds pay off.
fn simrank_lane_sum_slots_vec(
    entries: &[DepEntry],
    len1: usize,
    len2: usize,
    prev: &[f64],
    scratch: &mut OpScratch,
) -> f64 {
    let vals = &mut scratch.vals;
    gather_values(entries, prev, vals);
    if entries.len() == len1 * len2 {
        // Entries are distinct `(i, j)` pairs in sorted order, so a full
        // count means logical position `i·len2 + j` ≡ stream position.
        return dense_lane_sum(vals);
    }
    let mut lanes = [0.0f64; 4];
    for (e, &v) in entries.iter().zip(vals.iter()) {
        lanes[(e.i as usize * len2 + e.j as usize) & 3] += v;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Borrowed operators delegate; `sync_cfg` stays a no-op (a borrowed
/// operator cannot be mutated, so variant reconfiguration through a
/// reference is intentionally inert — used by the one-shot
/// `compute_with_operator` path).
impl<O: Operator> Operator for &O {
    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).map_sum(ctx, s1, s2, prev, scratch)
    }

    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        (**self).map_size(ctx, s1, s2)
    }

    fn supports_slots(&self) -> bool {
        (**self).supports_slots()
    }

    fn reads_ineligible_pairs(&self) -> bool {
        (**self).reads_ineligible_pairs()
    }

    fn fold_const_rows(&self) -> bool {
        (**self).fold_const_rows()
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).map_sum_slots(entries, len1, len2, prev, scratch)
    }

    fn term_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).term_slots(entries, len1, len2, prev, scratch)
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        (**self).omega(len1, len2)
    }

    fn vacuous(&self, len1: usize, len2: usize) -> bool {
        (**self).vacuous(len1, len2)
    }

    fn term<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).term(ctx, s1, s2, prev, scratch)
    }
}

/// The Table-3 operator for a χ variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantOp {
    /// The variant χ.
    pub variant: Variant,
    /// Injective-mapping backend.
    pub matcher: MatcherKind,
}

impl VariantOp {
    /// Operator for `variant` with the paper's greedy matcher.
    pub fn new(variant: Variant) -> Self {
        Self {
            variant,
            matcher: MatcherKind::Greedy,
        }
    }
}

impl Operator for VariantOp {
    fn sync_cfg(&mut self, cfg: &crate::config::FsimConfig) {
        self.variant = cfg.variant;
        self.matcher = cfg.matcher;
    }

    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        match self.variant {
            Variant::Simple => sum_best_per_left(ctx, s1, s2, prev),
            Variant::Bi => {
                sum_best_per_left(ctx, s1, s2, prev) + sum_best_per_right(ctx, s1, s2, prev)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                injective_sum(ctx, s1, s2, prev, scratch, self.matcher)
            }
        }
    }

    fn supports_slots(&self) -> bool {
        true
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        match self.variant {
            Variant::Simple => slots_sum_best_per_left(entries, prev),
            Variant::Bi => {
                slots_sum_best_per_left(entries, prev)
                    + slots_sum_best_per_right(entries, len2, prev, scratch)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                slots_injective_sum(entries, len1, len2, prev, scratch, self.matcher)
            }
        }
    }

    fn fold_const_rows(&self) -> bool {
        // Only `s` reduces each `i` group by a plain max, where a run of
        // constants collapses losslessly into its maximum. `b` also needs
        // per-`j` column maxima (folding would erase column attribution),
        // and the injective variants treat every entry as a distinct
        // matching edge.
        matches!(self.variant, Variant::Simple)
    }

    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        if ctx.theta <= 0.0 {
            // Every pair is eligible (L ≥ 0 always holds), so the counts
            // collapse to set sizes — O(1) instead of O(|S1|·|S2|).
            return match self.variant {
                Variant::Simple => {
                    if s2.is_empty() {
                        0
                    } else {
                        s1.len()
                    }
                }
                Variant::Bi => {
                    let left = if s2.is_empty() { 0 } else { s1.len() };
                    let right = if s1.is_empty() { 0 } else { s2.len() };
                    left + right
                }
                Variant::DegreePreserving | Variant::Bijective => s1.len().min(s2.len()),
            };
        }
        match self.variant {
            Variant::Simple => count_left_with_eligible(ctx, s1, s2),
            Variant::Bi => {
                count_left_with_eligible(ctx, s1, s2) + count_right_with_eligible(ctx, s1, s2)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                count_left_with_eligible(ctx, s1, s2).min(count_right_with_eligible(ctx, s1, s2))
            }
        }
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        match self.variant {
            Variant::Simple | Variant::DegreePreserving => len1 as f64,
            Variant::Bi => (len1 + len2) as f64,
            Variant::Bijective => ((len1 * len2) as f64).sqrt(),
        }
    }

    fn vacuous(&self, len1: usize, len2: usize) -> bool {
        match self.variant {
            // ∀u′∈N(u)… is vacuous when u has no neighbors.
            Variant::Simple | Variant::DegreePreserving => len1 == 0,
            // b/bj additionally quantify over v's neighbors.
            Variant::Bi | Variant::Bijective => len1 == 0 && len2 == 0,
        }
    }
}

/// The SimRank configuration of §4.3: `M(S1, S2) = S1 × S2`,
/// `Ω = |S1|·|S2|`. All pairs are mapped (no maximization is involved — the
/// mapping is the unique total one, so C3 holds trivially).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRankOp;

impl Operator for SimRankOp {
    fn map_sum<S: ScoreLookup>(
        &self,
        _ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        _scratch: &mut OpScratch,
    ) -> f64 {
        // Same deterministic lane order as the slot paths (see
        // [`simrank_lane_sum_slots`]), so on-the-fly and slot-based
        // evaluation stay bitwise interchangeable.
        let len2 = s2.len();
        let mut lanes = [0.0f64; 4];
        for (i, &x) in s1.iter().enumerate() {
            let mut lane = (i * len2) & 3;
            for &y in s2 {
                lanes[lane] += prev.get(x, y);
                lane = (lane + 1) & 3;
            }
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    fn supports_slots(&self) -> bool {
        true
    }

    fn reads_ineligible_pairs(&self) -> bool {
        true
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        if scalar_kernel_forced() {
            simrank_lane_sum_slots(entries, len2, prev)
        } else {
            simrank_lane_sum_slots_vec(entries, len1, len2, prev, scratch)
        }
    }

    fn map_size(&self, _ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        s1.len() * s2.len()
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        (len1 * len2) as f64
    }

    fn vacuous(&self, _len1: usize, _len2: usize) -> bool {
        // SimRank scores 0 when either in-neighborhood is empty; no vacuous
        // full-credit case.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsim_graph::pair_key;
    use fsim_graph::FxHashMap;

    struct MapLookup(FxHashMap<u64, f64>);
    impl ScoreLookup for MapLookup {
        fn get(&self, x: NodeId, y: NodeId) -> f64 {
            self.0.get(&pair_key(x, y)).copied().unwrap_or(0.0)
        }
    }

    fn ctx_indicator<'a>(
        labels1: &'a [LabelId],
        labels2: &'a [LabelId],
        eval: &'a LabelEval,
        theta: f64,
    ) -> OpCtx<'a> {
        OpCtx {
            labels1,
            labels2,
            label_eval: eval,
            theta,
        }
    }

    fn scores(entries: &[((u32, u32), f64)]) -> MapLookup {
        MapLookup(
            entries
                .iter()
                .map(|&((x, y), s)| (pair_key(x, y), s))
                .collect(),
        )
    }

    const A: LabelId = LabelId(0);
    const B: LabelId = LabelId(1);

    #[test]
    fn simple_takes_best_per_left() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.9), ((0, 1), 0.3), ((1, 0), 0.9), ((1, 1), 0.2)]);
        let op = VariantOp::new(Variant::Simple);
        let mut scratch = OpScratch::new();
        // Both left nodes pick y=0 (0.9) — non-injective is fine for s.
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 1.8).abs() < 1e-12);
        assert!((op.term(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn injective_variants_cannot_reuse_targets() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.9), ((0, 1), 0.3), ((1, 0), 0.9), ((1, 1), 0.2)]);
        let mut scratch = OpScratch::new();
        for v in [Variant::DegreePreserving, Variant::Bijective] {
            let op = VariantOp::new(v);
            let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
            // greedy: (0,0)=0.9 then (1,1)=0.2
            assert!((sum - 1.1).abs() < 1e-12, "variant {v:?}");
        }
    }

    #[test]
    fn hungarian_backend_is_at_least_greedy() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        // Adversarial: greedy takes 1.0 + 0.0, optimal 0.6 + 0.6.
        let prev = scores(&[((0, 0), 1.0), ((0, 1), 0.6), ((1, 0), 0.6), ((1, 1), 0.0)]);
        let mut scratch = OpScratch::new();
        let greedy = VariantOp {
            variant: Variant::Bijective,
            matcher: MatcherKind::Greedy,
        };
        let exact = VariantOp {
            variant: Variant::Bijective,
            matcher: MatcherKind::Hungarian,
        };
        let gs = greedy.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        let hs = exact.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((gs - 1.0).abs() < 1e-12);
        assert!((hs - 1.2).abs() < 1e-12);
    }

    #[test]
    fn bi_sums_both_directions() {
        let l1 = [A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.8), ((0, 1), 0.5)]);
        let op = VariantOp::new(Variant::Bi);
        let mut scratch = OpScratch::new();
        // left: max(0.8, 0.5) = 0.8; right: y0→0.8, y1→0.5.
        let sum = op.map_sum(&ctx, &[0], &[0, 1], &prev, &mut scratch);
        assert!((sum - 2.1).abs() < 1e-12);
        assert!((op.omega(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta_excludes_dissimilar_labels() {
        let l1 = [A, B];
        let l2 = [B, B];
        let eval = LabelEval::Sim(fsim_labels::LabelFn::Indicator.prepare(&{
            let i = fsim_graph::LabelInterner::new();
            i.intern("a");
            i.intern("b");
            i
        }));
        let ctx = OpCtx {
            labels1: &l1,
            labels2: &l2,
            label_eval: &eval,
            theta: 1.0,
        };
        let prev = scores(&[((0, 0), 0.9), ((1, 0), 0.7), ((1, 1), 0.6)]);
        let op = VariantOp::new(Variant::Simple);
        let mut scratch = OpScratch::new();
        // x=0 (label A) has no eligible target; x=1 picks best B-target 0.7.
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 0.7).abs() < 1e-12);
        assert_eq!(op.map_size(&ctx, &[0, 1], &[0, 1]), 1);
    }

    #[test]
    fn vacuity_conventions() {
        for v in [Variant::Simple, Variant::DegreePreserving] {
            let op = VariantOp::new(v);
            assert!(op.vacuous(0, 5));
            assert!(!op.vacuous(3, 0));
        }
        for v in [Variant::Bi, Variant::Bijective] {
            let op = VariantOp::new(v);
            assert!(op.vacuous(0, 0));
            assert!(!op.vacuous(0, 5));
            assert!(!op.vacuous(3, 0));
        }
    }

    #[test]
    fn empty_terms_follow_convention() {
        let l1: [LabelId; 0] = [];
        let l2 = [A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[]);
        let mut scratch = OpScratch::new();
        // s: S1 empty → vacuous → 1. S2 empty but S1 not → 0.
        let s = VariantOp::new(Variant::Simple);
        assert_eq!(s.term(&ctx, &[], &[0], &prev, &mut scratch), 1.0);
        let l1b = [A];
        let ctx2 = ctx_indicator(&l1b, &l2, &eval, 0.0);
        assert_eq!(s.term(&ctx2, &[0], &[], &prev, &mut scratch), 0.0);
        // bj: one side empty → 0; both empty → 1.
        let bj = VariantOp::new(Variant::Bijective);
        assert_eq!(bj.term(&ctx2, &[0], &[], &prev, &mut scratch), 0.0);
        assert_eq!(bj.term(&ctx, &[], &[], &prev, &mut scratch), 1.0);
    }

    #[test]
    fn simrank_op_averages_all_pairs() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(0.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 1.0), ((1, 1), 1.0)]);
        let op = SimRankOp;
        let mut scratch = OpScratch::new();
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 2.0).abs() < 1e-12);
        assert_eq!(op.map_size(&ctx, &[0, 1], &[0, 1]), 4);
        assert!((op.term(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch) - 0.5).abs() < 1e-12);
        assert_eq!(op.term(&ctx, &[], &[0], &prev, &mut scratch), 0.0);
    }

    #[test]
    fn c2_map_size_le_omega() {
        // C2 of Theorem 1 on a few shapes.
        let l1 = [A, A, B];
        let l2 = [A, B];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        for v in Variant::ALL {
            let op = VariantOp::new(v);
            let ms = op.map_size(&ctx, &[0, 1, 2], &[0, 1]) as f64;
            let om = op.omega(3, 2);
            assert!(ms <= om + 1e-12, "C2 violated for {v:?}: |M|={ms} Ω={om}");
        }
    }
}
