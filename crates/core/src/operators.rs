//! Mapping (`Mχ`) and normalizing (`Ωχ`) operators — Equation 2 and
//! Table 3 of the paper.
//!
//! Each operator computes, for two neighbor sets `S1 ⊆ V1` and `S2 ⊆ V2`,
//! the *maximum mapping* sum `Σ_{(x,y)∈Mχ} FSim^{k−1}(x, y)` (condition C3
//! of Theorem 1), the score-independent mapping size `|Mχ|` (conditions
//! C1/C2, also used by the static upper bound of §3.4), and the normalizer
//! `Ωχ`.
//!
//! The label constraint of Remark 2 (`L(x, y) ≥ θ` for every mapped pair) is
//! enforced inside every operator via [`OpCtx::eligible`].

use crate::config::{MatcherKind, Variant};
use fsim_graph::{LabelId, NodeId};
use fsim_labels::PreparedLabelSim;
use fsim_matching::{hungarian_max_weight, GreedyMatcher};

/// Label-term evaluation resolved for the engine hot loop.
#[derive(Debug, Clone)]
pub enum LabelEval {
    /// Look up the prepared similarity of the two interned labels.
    Sim(PreparedLabelSim),
    /// Constant for every pair (SimRank: 0, RoleSim: 1).
    Constant(f64),
}

impl LabelEval {
    /// `L` applied to two label ids.
    #[inline]
    pub fn sim(&self, a: LabelId, b: LabelId) -> f64 {
        match self {
            LabelEval::Sim(p) => p.sim(a, b),
            LabelEval::Constant(c) => *c,
        }
    }
}

/// Evaluation context shared by operators: node labels of both graphs, the
/// label function, and θ.
pub struct OpCtx<'a> {
    /// Node labels of `G1`.
    pub labels1: &'a [LabelId],
    /// Node labels of `G2`.
    pub labels2: &'a [LabelId],
    /// The label function.
    pub label_eval: &'a LabelEval,
    /// Mapping threshold θ.
    pub theta: f64,
}

impl<'a> OpCtx<'a> {
    /// `L(ℓ1(x), ℓ2(y))`.
    #[inline]
    pub fn label_sim(&self, x: NodeId, y: NodeId) -> f64 {
        self.label_eval
            .sim(self.labels1[x as usize], self.labels2[y as usize])
    }

    /// The Remark-2 constraint: may `x` be mapped to `y`?
    #[inline]
    pub fn eligible(&self, x: NodeId, y: NodeId) -> bool {
        self.label_sim(x, y) >= self.theta
    }
}

/// Read-only access to the previous iteration's scores, including the
/// configured fallback for non-maintained pairs (0 under θ-pruning,
/// `α·ub` under upper-bound pruning).
pub trait ScoreLookup {
    /// `FSim^{k−1}(x, y)`.
    fn get(&self, x: NodeId, y: NodeId) -> f64;
}

/// One prepared dependency of a pair's Equation-3 update: neighbor pair
/// `(x, y)` with `x` at position `i` of `S1` and `y` at position `j` of
/// `S2`, resolved at session-prepare time to either the slot holding its
/// score or (for pairs pruned from the maintained set) the constant the
/// fallback serves. Lists are θ-eligibility prefiltered and sorted by
/// `(i, j)`, so the slot-based operator paths are pure index arithmetic —
/// no `PairIndex` lookups or `L(x, y) ≥ θ` re-checks per iteration.
///
/// Pairs whose fallback constant is `0` are omitted entirely: a zero can
/// neither win a max, enter a positive-weight matching, nor change a sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepEntry {
    /// Position of `x` within `S1`.
    pub i: u32,
    /// Position of `y` within `S2`.
    pub j: u32,
    /// Score-buffer slot of `(x, y)`, or [`DepEntry::CONST`].
    pub slot: u32,
    /// The fallback constant, read when `slot == CONST`.
    pub cval: f32,
}

impl DepEntry {
    /// Sentinel slot marking a constant (non-maintained) dependency.
    pub const CONST: u32 = u32::MAX;

    /// The dependency's value under the previous iteration's scores.
    #[inline]
    pub fn value(&self, prev: &[f64]) -> f64 {
        if self.slot == Self::CONST {
            self.cval as f64
        } else {
            prev[self.slot as usize]
        }
    }
}

/// Reusable per-worker scratch buffers for the injective operators.
#[derive(Debug, Default)]
pub struct OpScratch {
    edges: Vec<(f64, u32, u32)>,
    weights: Vec<f64>,
    best_right: Vec<f64>,
    matcher: GreedyMatcher,
}

impl OpScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A χ-simulation operator pair `(Mχ, Ωχ)`.
///
/// Implementations must satisfy the Theorem-1 conditions: `map_size` and
/// `omega` are independent of iteration state (C1), `map_size ≤ omega`
/// whenever not vacuous (C2), and `map_sum` realizes the *maximum* mapping
/// (C3) — exactly for `s`/`b`, greedily (the paper's approximation) for
/// `dp`/`bj`.
///
/// Built-in operators: [`VariantOp`] (the paper's four variants) and
/// [`SimRankOp`] (the §4.3 SimRank configuration). Custom operators plug
/// into the one-shot and session entry points:
///
/// ```
/// use fsim_core::{compute_with_operator, simrank_via_framework, SimRankOp};
/// use fsim_core::presets::simrank_config;
/// use fsim_graph::graph_from_parts;
///
/// let g = graph_from_parts(&["x", "y", "x"], &[(1, 0), (1, 2)]);
/// let result = compute_with_operator(&g, &g, &simrank_config(0.6, 1e-4), &SimRankOp).unwrap();
/// // Nodes 0 and 2 share their only in-neighbor: SimRank(0,2) = C.
/// assert!((result.get(0, 2).unwrap() - 0.6).abs() < 1e-9);
/// ```
pub trait Operator: Send + Sync {
    /// Re-derives any configuration-dependent state after an
    /// [`FsimEngine::rerun`](crate::engine::FsimEngine::rerun)
    /// reconfiguration (e.g. [`VariantOp`] picks up a changed variant or
    /// matcher). Operators without configuration state keep the default
    /// no-op.
    fn sync_cfg(&mut self, _cfg: &crate::config::FsimConfig) {}

    /// Maximum-mapping sum `Σ_{(x,y)∈Mχ(S1,S2)} prev(x, y)`.
    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64;

    /// Whether the operator implements [`map_sum_slots`](Self::map_sum_slots)
    /// over prepared dependency lists. Operators answering `false` keep the
    /// engine on the on-the-fly [`map_sum`](Self::map_sum) sweep.
    fn supports_slots(&self) -> bool {
        false
    }

    /// Whether the prepared dependency lists must also contain pairs that
    /// fail the Remark-2 eligibility constraint `L(x, y) ≥ θ`
    /// ([`SimRankOp`] reads *every* neighbor pair, eligible or not).
    fn reads_ineligible_pairs(&self) -> bool {
        false
    }

    /// [`map_sum`](Self::map_sum) evaluated from a prepared dependency
    /// list (θ-prefiltered, `(i, j)`-sorted — see [`DepEntry`]) instead of
    /// raw neighbor sets. Must produce bitwise-identical results to
    /// `map_sum` under the same previous scores; the engine property-tests
    /// this equivalence. Only called when
    /// [`supports_slots`](Self::supports_slots) is `true`.
    fn map_sum_slots(
        &self,
        _entries: &[DepEntry],
        _len1: usize,
        _len2: usize,
        _prev: &[f64],
        _scratch: &mut OpScratch,
    ) -> f64 {
        unimplemented!("operator does not support slot-based evaluation")
    }

    /// The neighbor term of Equation 2 over a prepared dependency list —
    /// [`term`](Self::term) with `map_sum` replaced by
    /// [`map_sum_slots`](Self::map_sum_slots); `len1` / `len2` are the
    /// original neighbor-set sizes (they drive `Ωχ` and vacuity).
    fn term_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        if self.vacuous(len1, len2) {
            return 1.0;
        }
        let omega = self.omega(len1, len2);
        if omega <= 0.0 {
            return 0.0;
        }
        self.map_sum_slots(entries, len1, len2, prev, scratch) / omega
    }

    /// Score-independent upper bound on `|Mχ(S1, S2)|` (exact for `s`/`b`).
    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize;

    /// `Ωχ(S1, S2)` as a function of the set sizes.
    fn omega(&self, len1: usize, len2: usize) -> f64;

    /// Whether the underlying exact condition is *vacuously satisfied* for
    /// these sizes (the term then contributes its full weight; §4.4 of
    /// DESIGN.md).
    fn vacuous(&self, len1: usize, len2: usize) -> bool;

    /// The neighbor term of Equation 2 with the empty-set convention
    /// applied.
    fn term<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        if self.vacuous(s1.len(), s2.len()) {
            return 1.0;
        }
        let omega = self.omega(s1.len(), s2.len());
        if omega <= 0.0 {
            return 0.0;
        }
        self.map_sum(ctx, s1, s2, prev, scratch) / omega
    }
}

/// `Σ_{x∈S1} max_{y∈S2, eligible} prev(x, y)` — the `fs` mapping of Eq. 7.
fn sum_best_per_left<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
) -> f64 {
    let mut total = 0.0;
    for &x in s1 {
        let mut best = 0.0f64;
        for &y in s2 {
            if ctx.eligible(x, y) {
                let s = prev.get(x, y);
                if s > best {
                    best = s;
                }
            }
        }
        total += best;
    }
    total
}

/// `Σ_{y∈S2} max_{x∈S1, eligible} prev(x, y)` — the converse direction of
/// the `fb` mapping (scores stay oriented `G1 → G2`).
fn sum_best_per_right<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
) -> f64 {
    let mut total = 0.0;
    for &y in s2 {
        let mut best = 0.0f64;
        for &x in s1 {
            if ctx.eligible(x, y) {
                let s = prev.get(x, y);
                if s > best {
                    best = s;
                }
            }
        }
        total += best;
    }
    total
}

fn count_left_with_eligible(ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
    s1.iter()
        .filter(|&&x| s2.iter().any(|&y| ctx.eligible(x, y)))
        .count()
}

fn count_right_with_eligible(ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
    s2.iter()
        .filter(|&&y| s1.iter().any(|&x| ctx.eligible(x, y)))
        .count()
}

/// Maximum-weight injective mapping sum between `S1` and `S2`
/// (used by both `M_dp` and `M_bj`; they differ only in `Ω` and vacuity).
fn injective_sum<S: ScoreLookup>(
    ctx: &OpCtx<'_>,
    s1: &[NodeId],
    s2: &[NodeId],
    prev: &S,
    scratch: &mut OpScratch,
    matcher: MatcherKind,
) -> f64 {
    if s1.is_empty() || s2.is_empty() {
        return 0.0;
    }
    match matcher {
        MatcherKind::Greedy => {
            scratch.edges.clear();
            for (i, &x) in s1.iter().enumerate() {
                for (j, &y) in s2.iter().enumerate() {
                    if ctx.eligible(x, y) {
                        let w = prev.get(x, y);
                        if w > 0.0 {
                            scratch.edges.push((w, i as u32, j as u32));
                        }
                    }
                }
            }
            let (sum, _) = scratch
                .matcher
                .assign(s1.len(), s2.len(), &mut scratch.edges);
            sum
        }
        MatcherKind::Hungarian => {
            // Orient so rows are the smaller side; ineligible pairs weigh 0
            // (they may be "assigned" but contribute nothing).
            let (rows, cols, transposed) = if s1.len() <= s2.len() {
                (s1, s2, false)
            } else {
                (s2, s1, true)
            };
            scratch.weights.clear();
            scratch.weights.resize(rows.len() * cols.len(), 0.0);
            for (i, &r) in rows.iter().enumerate() {
                for (j, &c) in cols.iter().enumerate() {
                    let (x, y) = if transposed { (c, r) } else { (r, c) };
                    if ctx.eligible(x, y) {
                        scratch.weights[i * cols.len() + j] = prev.get(x, y);
                    }
                }
            }
            let (sum, _) = hungarian_max_weight(rows.len(), cols.len(), &scratch.weights);
            sum
        }
    }
}

/// `Σ_x max_{eligible y} prev(x, y)` over a prepared dependency list.
///
/// Entries are `(i, j)`-sorted, so each left node's eligible targets are
/// consecutive; left nodes with no eligible target contribute exactly the
/// `0.0` the on-the-fly path adds for them, so they are simply absent.
fn slots_sum_best_per_left(entries: &[DepEntry], prev: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut idx = 0;
    while idx < entries.len() {
        let row = entries[idx].i;
        let mut best = 0.0f64;
        while idx < entries.len() && entries[idx].i == row {
            let s = entries[idx].value(prev);
            if s > best {
                best = s;
            }
            idx += 1;
        }
        total += best;
    }
    total
}

/// `Σ_y max_{eligible x} prev(x, y)` over a prepared dependency list (the
/// converse direction of the `fb` mapping). Accumulates per-column maxima
/// in scratch and sums columns in `j` order, reproducing the on-the-fly
/// path's iteration order bitwise (empty columns contribute `+0.0`).
fn slots_sum_best_per_right(
    entries: &[DepEntry],
    len2: usize,
    prev: &[f64],
    scratch: &mut OpScratch,
) -> f64 {
    let best = &mut scratch.best_right;
    best.clear();
    best.resize(len2, 0.0);
    for e in entries {
        let s = e.value(prev);
        if s > best[e.j as usize] {
            best[e.j as usize] = s;
        }
    }
    let mut total = 0.0;
    for &b in best.iter() {
        total += b;
    }
    total
}

/// Maximum-weight injective mapping sum over a prepared dependency list
/// (mirrors [`injective_sum`]; entry order equals the on-the-fly edge
/// enumeration order, so the greedy matcher sees an identical edge list).
fn slots_injective_sum(
    entries: &[DepEntry],
    len1: usize,
    len2: usize,
    prev: &[f64],
    scratch: &mut OpScratch,
    matcher: MatcherKind,
) -> f64 {
    if len1 == 0 || len2 == 0 {
        return 0.0;
    }
    match matcher {
        MatcherKind::Greedy => {
            scratch.edges.clear();
            for e in entries {
                let w = e.value(prev);
                if w > 0.0 {
                    scratch.edges.push((w, e.i, e.j));
                }
            }
            let (sum, _) = scratch.matcher.assign(len1, len2, &mut scratch.edges);
            sum
        }
        MatcherKind::Hungarian => {
            let (rows, cols, transposed) = if len1 <= len2 {
                (len1, len2, false)
            } else {
                (len2, len1, true)
            };
            scratch.weights.clear();
            scratch.weights.resize(rows * cols, 0.0);
            for e in entries {
                let (r, c) = if transposed { (e.j, e.i) } else { (e.i, e.j) };
                scratch.weights[r as usize * cols + c as usize] = e.value(prev);
            }
            let (sum, _) = hungarian_max_weight(rows, cols, &scratch.weights);
            sum
        }
    }
}

/// Borrowed operators delegate; `sync_cfg` stays a no-op (a borrowed
/// operator cannot be mutated, so variant reconfiguration through a
/// reference is intentionally inert — used by the one-shot
/// `compute_with_operator` path).
impl<O: Operator> Operator for &O {
    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).map_sum(ctx, s1, s2, prev, scratch)
    }

    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        (**self).map_size(ctx, s1, s2)
    }

    fn supports_slots(&self) -> bool {
        (**self).supports_slots()
    }

    fn reads_ineligible_pairs(&self) -> bool {
        (**self).reads_ineligible_pairs()
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).map_sum_slots(entries, len1, len2, prev, scratch)
    }

    fn term_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).term_slots(entries, len1, len2, prev, scratch)
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        (**self).omega(len1, len2)
    }

    fn vacuous(&self, len1: usize, len2: usize) -> bool {
        (**self).vacuous(len1, len2)
    }

    fn term<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        (**self).term(ctx, s1, s2, prev, scratch)
    }
}

/// The Table-3 operator for a χ variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantOp {
    /// The variant χ.
    pub variant: Variant,
    /// Injective-mapping backend.
    pub matcher: MatcherKind,
}

impl VariantOp {
    /// Operator for `variant` with the paper's greedy matcher.
    pub fn new(variant: Variant) -> Self {
        Self {
            variant,
            matcher: MatcherKind::Greedy,
        }
    }
}

impl Operator for VariantOp {
    fn sync_cfg(&mut self, cfg: &crate::config::FsimConfig) {
        self.variant = cfg.variant;
        self.matcher = cfg.matcher;
    }

    fn map_sum<S: ScoreLookup>(
        &self,
        ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        scratch: &mut OpScratch,
    ) -> f64 {
        match self.variant {
            Variant::Simple => sum_best_per_left(ctx, s1, s2, prev),
            Variant::Bi => {
                sum_best_per_left(ctx, s1, s2, prev) + sum_best_per_right(ctx, s1, s2, prev)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                injective_sum(ctx, s1, s2, prev, scratch, self.matcher)
            }
        }
    }

    fn supports_slots(&self) -> bool {
        true
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        len1: usize,
        len2: usize,
        prev: &[f64],
        scratch: &mut OpScratch,
    ) -> f64 {
        match self.variant {
            Variant::Simple => slots_sum_best_per_left(entries, prev),
            Variant::Bi => {
                slots_sum_best_per_left(entries, prev)
                    + slots_sum_best_per_right(entries, len2, prev, scratch)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                slots_injective_sum(entries, len1, len2, prev, scratch, self.matcher)
            }
        }
    }

    fn map_size(&self, ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        if ctx.theta <= 0.0 {
            // Every pair is eligible (L ≥ 0 always holds), so the counts
            // collapse to set sizes — O(1) instead of O(|S1|·|S2|).
            return match self.variant {
                Variant::Simple => {
                    if s2.is_empty() {
                        0
                    } else {
                        s1.len()
                    }
                }
                Variant::Bi => {
                    let left = if s2.is_empty() { 0 } else { s1.len() };
                    let right = if s1.is_empty() { 0 } else { s2.len() };
                    left + right
                }
                Variant::DegreePreserving | Variant::Bijective => s1.len().min(s2.len()),
            };
        }
        match self.variant {
            Variant::Simple => count_left_with_eligible(ctx, s1, s2),
            Variant::Bi => {
                count_left_with_eligible(ctx, s1, s2) + count_right_with_eligible(ctx, s1, s2)
            }
            Variant::DegreePreserving | Variant::Bijective => {
                count_left_with_eligible(ctx, s1, s2).min(count_right_with_eligible(ctx, s1, s2))
            }
        }
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        match self.variant {
            Variant::Simple | Variant::DegreePreserving => len1 as f64,
            Variant::Bi => (len1 + len2) as f64,
            Variant::Bijective => ((len1 * len2) as f64).sqrt(),
        }
    }

    fn vacuous(&self, len1: usize, len2: usize) -> bool {
        match self.variant {
            // ∀u′∈N(u)… is vacuous when u has no neighbors.
            Variant::Simple | Variant::DegreePreserving => len1 == 0,
            // b/bj additionally quantify over v's neighbors.
            Variant::Bi | Variant::Bijective => len1 == 0 && len2 == 0,
        }
    }
}

/// The SimRank configuration of §4.3: `M(S1, S2) = S1 × S2`,
/// `Ω = |S1|·|S2|`. All pairs are mapped (no maximization is involved — the
/// mapping is the unique total one, so C3 holds trivially).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimRankOp;

impl Operator for SimRankOp {
    fn map_sum<S: ScoreLookup>(
        &self,
        _ctx: &OpCtx<'_>,
        s1: &[NodeId],
        s2: &[NodeId],
        prev: &S,
        _scratch: &mut OpScratch,
    ) -> f64 {
        let mut total = 0.0;
        for &x in s1 {
            for &y in s2 {
                total += prev.get(x, y);
            }
        }
        total
    }

    fn supports_slots(&self) -> bool {
        true
    }

    fn reads_ineligible_pairs(&self) -> bool {
        true
    }

    fn map_sum_slots(
        &self,
        entries: &[DepEntry],
        _len1: usize,
        _len2: usize,
        prev: &[f64],
        _scratch: &mut OpScratch,
    ) -> f64 {
        let mut total = 0.0;
        for e in entries {
            total += e.value(prev);
        }
        total
    }

    fn map_size(&self, _ctx: &OpCtx<'_>, s1: &[NodeId], s2: &[NodeId]) -> usize {
        s1.len() * s2.len()
    }

    fn omega(&self, len1: usize, len2: usize) -> f64 {
        (len1 * len2) as f64
    }

    fn vacuous(&self, _len1: usize, _len2: usize) -> bool {
        // SimRank scores 0 when either in-neighborhood is empty; no vacuous
        // full-credit case.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsim_graph::pair_key;
    use fsim_graph::FxHashMap;

    struct MapLookup(FxHashMap<u64, f64>);
    impl ScoreLookup for MapLookup {
        fn get(&self, x: NodeId, y: NodeId) -> f64 {
            self.0.get(&pair_key(x, y)).copied().unwrap_or(0.0)
        }
    }

    fn ctx_indicator<'a>(
        labels1: &'a [LabelId],
        labels2: &'a [LabelId],
        eval: &'a LabelEval,
        theta: f64,
    ) -> OpCtx<'a> {
        OpCtx {
            labels1,
            labels2,
            label_eval: eval,
            theta,
        }
    }

    fn scores(entries: &[((u32, u32), f64)]) -> MapLookup {
        MapLookup(
            entries
                .iter()
                .map(|&((x, y), s)| (pair_key(x, y), s))
                .collect(),
        )
    }

    const A: LabelId = LabelId(0);
    const B: LabelId = LabelId(1);

    #[test]
    fn simple_takes_best_per_left() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.9), ((0, 1), 0.3), ((1, 0), 0.9), ((1, 1), 0.2)]);
        let op = VariantOp::new(Variant::Simple);
        let mut scratch = OpScratch::new();
        // Both left nodes pick y=0 (0.9) — non-injective is fine for s.
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 1.8).abs() < 1e-12);
        assert!((op.term(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn injective_variants_cannot_reuse_targets() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.9), ((0, 1), 0.3), ((1, 0), 0.9), ((1, 1), 0.2)]);
        let mut scratch = OpScratch::new();
        for v in [Variant::DegreePreserving, Variant::Bijective] {
            let op = VariantOp::new(v);
            let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
            // greedy: (0,0)=0.9 then (1,1)=0.2
            assert!((sum - 1.1).abs() < 1e-12, "variant {v:?}");
        }
    }

    #[test]
    fn hungarian_backend_is_at_least_greedy() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        // Adversarial: greedy takes 1.0 + 0.0, optimal 0.6 + 0.6.
        let prev = scores(&[((0, 0), 1.0), ((0, 1), 0.6), ((1, 0), 0.6), ((1, 1), 0.0)]);
        let mut scratch = OpScratch::new();
        let greedy = VariantOp {
            variant: Variant::Bijective,
            matcher: MatcherKind::Greedy,
        };
        let exact = VariantOp {
            variant: Variant::Bijective,
            matcher: MatcherKind::Hungarian,
        };
        let gs = greedy.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        let hs = exact.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((gs - 1.0).abs() < 1e-12);
        assert!((hs - 1.2).abs() < 1e-12);
    }

    #[test]
    fn bi_sums_both_directions() {
        let l1 = [A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 0.8), ((0, 1), 0.5)]);
        let op = VariantOp::new(Variant::Bi);
        let mut scratch = OpScratch::new();
        // left: max(0.8, 0.5) = 0.8; right: y0→0.8, y1→0.5.
        let sum = op.map_sum(&ctx, &[0], &[0, 1], &prev, &mut scratch);
        assert!((sum - 2.1).abs() < 1e-12);
        assert!((op.omega(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta_excludes_dissimilar_labels() {
        let l1 = [A, B];
        let l2 = [B, B];
        let eval = LabelEval::Sim(fsim_labels::LabelFn::Indicator.prepare(&{
            let i = fsim_graph::LabelInterner::new();
            i.intern("a");
            i.intern("b");
            i
        }));
        let ctx = OpCtx {
            labels1: &l1,
            labels2: &l2,
            label_eval: &eval,
            theta: 1.0,
        };
        let prev = scores(&[((0, 0), 0.9), ((1, 0), 0.7), ((1, 1), 0.6)]);
        let op = VariantOp::new(Variant::Simple);
        let mut scratch = OpScratch::new();
        // x=0 (label A) has no eligible target; x=1 picks best B-target 0.7.
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 0.7).abs() < 1e-12);
        assert_eq!(op.map_size(&ctx, &[0, 1], &[0, 1]), 1);
    }

    #[test]
    fn vacuity_conventions() {
        for v in [Variant::Simple, Variant::DegreePreserving] {
            let op = VariantOp::new(v);
            assert!(op.vacuous(0, 5));
            assert!(!op.vacuous(3, 0));
        }
        for v in [Variant::Bi, Variant::Bijective] {
            let op = VariantOp::new(v);
            assert!(op.vacuous(0, 0));
            assert!(!op.vacuous(0, 5));
            assert!(!op.vacuous(3, 0));
        }
    }

    #[test]
    fn empty_terms_follow_convention() {
        let l1: [LabelId; 0] = [];
        let l2 = [A];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[]);
        let mut scratch = OpScratch::new();
        // s: S1 empty → vacuous → 1. S2 empty but S1 not → 0.
        let s = VariantOp::new(Variant::Simple);
        assert_eq!(s.term(&ctx, &[], &[0], &prev, &mut scratch), 1.0);
        let l1b = [A];
        let ctx2 = ctx_indicator(&l1b, &l2, &eval, 0.0);
        assert_eq!(s.term(&ctx2, &[0], &[], &prev, &mut scratch), 0.0);
        // bj: one side empty → 0; both empty → 1.
        let bj = VariantOp::new(Variant::Bijective);
        assert_eq!(bj.term(&ctx2, &[0], &[], &prev, &mut scratch), 0.0);
        assert_eq!(bj.term(&ctx, &[], &[], &prev, &mut scratch), 1.0);
    }

    #[test]
    fn simrank_op_averages_all_pairs() {
        let l1 = [A, A];
        let l2 = [A, A];
        let eval = LabelEval::Constant(0.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        let prev = scores(&[((0, 0), 1.0), ((1, 1), 1.0)]);
        let op = SimRankOp;
        let mut scratch = OpScratch::new();
        let sum = op.map_sum(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch);
        assert!((sum - 2.0).abs() < 1e-12);
        assert_eq!(op.map_size(&ctx, &[0, 1], &[0, 1]), 4);
        assert!((op.term(&ctx, &[0, 1], &[0, 1], &prev, &mut scratch) - 0.5).abs() < 1e-12);
        assert_eq!(op.term(&ctx, &[], &[0], &prev, &mut scratch), 0.0);
    }

    #[test]
    fn c2_map_size_le_omega() {
        // C2 of Theorem 1 on a few shapes.
        let l1 = [A, A, B];
        let l2 = [A, B];
        let eval = LabelEval::Constant(1.0);
        let ctx = ctx_indicator(&l1, &l2, &eval, 0.0);
        for v in Variant::ALL {
            let op = VariantOp::new(v);
            let ms = op.map_size(&ctx, &[0, 1, 2], &[0, 1]) as f64;
            let om = op.omega(3, 2);
            assert!(ms <= om + 1e-12, "C2 violated for {v:?}: |M|={ms} Ω={om}");
        }
    }
}
