//! The §4.3 configurations: SimRank, RoleSim and k-bisimulation expressed
//! as instances of the `FSimχ` framework.

use crate::config::{FsimConfig, InitScheme, LabelTermMode, Variant};
use crate::engine::{compute, FsimEngine};
use crate::operators::SimRankOp;
use crate::result::FsimResult;
use fsim_graph::transform::undirected;
use fsim_graph::Graph;

/// The SimRank configuration of §4.3: `w⁺ = 0`, `w⁻ = C` (the SimRank
/// decay), `L ≡ 0`, identity initialization and a pinned diagonal. Pair
/// with [`SimRankOp`] (`M = S1 × S2`, `Ω = |S1|·|S2|`).
pub fn simrank_config(c: f64, epsilon: f64) -> FsimConfig {
    assert!((0.0..1.0).contains(&c), "SimRank decay must be in [0,1)");
    FsimConfig {
        variant: Variant::Simple, // unused: custom operator
        w_out: 0.0,
        w_in: c,
        theta: 0.0,
        epsilon,
        max_iters: None,
        label_fn: fsim_labels::LabelFn::Indicator,
        label_term: LabelTermMode::Constant(0.0),
        init: InitScheme::Identity,
        upper_bound: None,
        threads: 1,
        matcher: crate::config::MatcherKind::Greedy,
        pin_identical: true,
        convergence: crate::config::ConvergenceMode::Auto,
        shards: crate::config::ShardSpec::Auto,
        csr_budget: FsimConfig::DEFAULT_CSR_BUDGET,
        trajectory_budget: FsimConfig::DEFAULT_TRAJECTORY_BUDGET,
        spill_dir: None,
    }
}

/// SimRank via the framework (§4.3): single label-free graph,
/// [`simrank_config`] + [`SimRankOp`].
///
/// Returns scores for all node pairs of `g` against itself.
pub fn simrank_via_framework(g: &Graph, c: f64, epsilon: f64) -> FsimResult {
    let cfg = simrank_config(c, epsilon);
    FsimEngine::with_operator(g, g, &cfg, SimRankOp)
        .expect("valid SimRank configuration")
        .into_result()
}

/// RoleSim via the framework (§4.3): the graph is symmetrized (RoleSim is
/// defined on undirected graphs), in-neighbors are left empty by setting
/// `w⁻ = 0`, `L ≡ 1`, degree-ratio initialization and the bijective
/// mapping/normalizing operators. `beta` plays RoleSim's damping role via
/// `w⁺ = 1 − beta`.
pub fn rolesim_via_framework(g: &Graph, beta: f64, epsilon: f64) -> FsimResult {
    assert!((0.0..1.0).contains(&beta), "RoleSim beta must be in [0,1)");
    let und = undirected(g);
    let cfg = FsimConfig {
        variant: Variant::Bijective,
        w_out: 1.0 - beta,
        w_in: 0.0,
        theta: 0.0,
        epsilon,
        max_iters: None,
        label_fn: fsim_labels::LabelFn::Indicator,
        label_term: LabelTermMode::Constant(1.0),
        init: InitScheme::OutDegreeRatio,
        upper_bound: None,
        threads: 1,
        matcher: crate::config::MatcherKind::Greedy,
        pin_identical: false,
        convergence: crate::config::ConvergenceMode::Auto,
        shards: crate::config::ShardSpec::Auto,
        csr_budget: FsimConfig::DEFAULT_CSR_BUDGET,
        trajectory_budget: FsimConfig::DEFAULT_TRAJECTORY_BUDGET,
        spill_dir: None,
    };
    compute(&und, &und, &cfg).expect("valid RoleSim configuration")
}

/// The k-bisimulation configuration of Theorem 4: single graph,
/// out-neighbors only (`w⁻ = 0`), bisimulation operators, indicator labels,
/// stopped after exactly `k` iterations. `FSimᵏ_b(u, v) = 1` iff `u` and `v`
/// are k-bisimilar.
pub fn kbisim_via_framework(g: &Graph, k: usize) -> FsimResult {
    let cfg = kbisim_config(k);
    compute(g, g, &cfg).expect("valid k-bisimulation configuration")
}

/// Milner's original 1971 simulation considered out-neighbors only; §6 of
/// the paper notes that "reverting to the original definition is as easy
/// as setting w⁻ = 0". This preset does exactly that (keeping the caller's
/// variant and the default `w* = 0.2`).
pub fn milner_config(variant: Variant) -> FsimConfig {
    let mut cfg = FsimConfig::new(variant);
    cfg.w_out = 0.8;
    cfg.w_in = 0.0;
    cfg
}

/// Fractional *bounded* simulation (Fan et al.; future work in §6): query
/// edges may be matched by data paths of length ≤ `k`. Realized by running
/// the engine on the data graph's k-hop closure
/// ([`fsim_graph::transform::khop_closure`]).
pub fn bounded_fsim(
    query: &Graph,
    data: &Graph,
    k: u32,
    cfg: &FsimConfig,
) -> Result<crate::result::FsimResult, crate::config::ConfigError> {
    let closure = fsim_graph::transform::khop_closure(data, k);
    compute(query, &closure, cfg)
}

/// The raw configuration used by [`kbisim_via_framework`].
pub fn kbisim_config(k: usize) -> FsimConfig {
    FsimConfig {
        variant: Variant::Bi,
        w_out: 0.8,
        w_in: 0.0,
        theta: 0.0,
        epsilon: 0.0,
        max_iters: Some(k),
        label_fn: fsim_labels::LabelFn::Indicator,
        label_term: LabelTermMode::Sim,
        init: InitScheme::LabelSim,
        upper_bound: None,
        threads: 1,
        matcher: crate::config::MatcherKind::Greedy,
        pin_identical: false,
        convergence: crate::config::ConvergenceMode::Auto,
        shards: crate::config::ShardSpec::Auto,
        csr_budget: FsimConfig::DEFAULT_CSR_BUDGET,
        trajectory_budget: FsimConfig::DEFAULT_TRAJECTORY_BUDGET,
        spill_dir: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsim_graph::graph_from_parts;

    #[test]
    fn simrank_diagonal_is_one_and_rest_bounded() {
        let g = graph_from_parts(&["x"; 4], &[(0, 2), (1, 2), (2, 3)]);
        let r = simrank_via_framework(&g, 0.8, 1e-4);
        for u in g.nodes() {
            assert_eq!(r.get(u, u), Some(1.0));
        }
        for (_, _, s) in r.iter_pairs() {
            assert!((0.0..=1.0).contains(&s));
        }
        // Nodes 0 and 1 share their only in-neighbor-less structure; their
        // similarity comes from the c-weighted in-neighbor average: both
        // have no in-neighbors → 0 similarity (SimRank convention).
        assert_eq!(r.get(0, 1), Some(0.0));
    }

    #[test]
    fn simrank_symmetry() {
        let g = graph_from_parts(&["x"; 5], &[(0, 2), (1, 2), (3, 2), (2, 4), (0, 4)]);
        let r = simrank_via_framework(&g, 0.6, 1e-6);
        for u in g.nodes() {
            for v in g.nodes() {
                let a = r.get(u, v).unwrap();
                let b = r.get(v, u).unwrap();
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rolesim_automorphic_nodes_score_one() {
        // 1 and 2 are automorphically equivalent leaves of 0.
        let g = graph_from_parts(&["x", "x", "x"], &[(0, 1), (0, 2)]);
        let r = rolesim_via_framework(&g, 0.15, 1e-6);
        let s = r.get(1, 2).unwrap();
        assert!((s - 1.0).abs() < 1e-6, "automorphic pair scored {s}");
    }

    #[test]
    fn milner_ignores_in_neighbors() {
        // u: 'b' with an 'a' parent; v: 'b' without. Ma's definition
        // (in+out) separates them; Milner's (out-only) does not.
        let g1 = graph_from_parts(&["a", "b"], &[(0, 1)]);
        let g2 = graph_from_parts(&["b"], &[]);
        let milner = milner_config(Variant::Simple);
        let r = compute(&g1, &g2, &milner).unwrap();
        assert_eq!(r.get(1, 0), Some(1.0), "out-only simulation must hold");
        let full = FsimConfig::new(Variant::Simple);
        let r2 = compute(&g1, &g2, &full).unwrap();
        assert!(r2.get(1, 0).unwrap() < 1.0, "in-aware simulation must fail");
    }

    #[test]
    fn bounded_fsim_bridges_paths() {
        use fsim_graph::{GraphBuilder, LabelInterner};
        use std::sync::Arc;
        let i = LabelInterner::shared();
        let mut qb = GraphBuilder::with_interner(Arc::clone(&i));
        let qa = qb.add_node("a");
        let qn = qb.add_node("b");
        qb.add_edge(qa, qn);
        let q = qb.build();
        let mut db = GraphBuilder::with_interner(i);
        let da = db.add_node("a");
        let dx = db.add_node("x");
        let dn = db.add_node("b");
        db.add_edge(da, dx);
        db.add_edge(dx, dn);
        let d = db.build();
        let cfg = milner_config(Variant::Simple);
        let plain = compute(&q, &d, &cfg).unwrap();
        assert!(plain.get(qa, da).unwrap() < 1.0, "1-hop simulation fails");
        let bounded = bounded_fsim(&q, &d, 2, &cfg).unwrap();
        assert_eq!(bounded.get(qa, da), Some(1.0), "2-bounded simulation holds");
    }

    #[test]
    fn kbisim_zero_is_label_equality() {
        let g = graph_from_parts(&["a", "a", "b"], &[(0, 2), (1, 2)]);
        let r = kbisim_via_framework(&g, 0);
        assert_eq!(r.get(0, 1), Some(1.0));
        assert!(r.get(0, 2).unwrap() < 1.0);
    }

    #[test]
    fn kbisim_separates_at_depth() {
        // 0 -> 1 -> 3(b); 2 -> 4(a). Nodes 0 and 2 share labels with
        // out-children of equal labels at depth 1? No: children 1 (a) vs 4
        // (a) — both 'a'. At depth 2 child-of-child differs (3 is 'b',
        // 4 has none).
        let g = graph_from_parts(&["a", "a", "a", "b", "a"], &[(0, 1), (1, 3), (2, 4)]);
        let r1 = kbisim_via_framework(&g, 1);
        assert_eq!(r1.get(0, 2), Some(1.0), "1-bisimilar: same-label children");
        let r2 = kbisim_via_framework(&g, 2);
        assert!(
            r2.get(0, 2).unwrap() < 1.0,
            "2-bisimulation must separate them"
        );
    }
}
