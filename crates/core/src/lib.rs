//! # fsim-core
//!
//! The paper's primary contribution: the **`FSimχ` framework** computing
//! fractional χ-simulation scores — the degree, in `[0, 1]`, to which a node
//! `u ∈ G1` is approximately χ-simulated by a node `v ∈ G2` — for the four
//! simulation variants of the paper (simple, degree-preserving, bi-,
//! bijective) and for user-defined operator configurations (SimRank,
//! RoleSim, k-bisimulation, …).
//!
//! ```
//! use fsim_core::{compute, FsimConfig, Variant};
//! use fsim_graph::examples::figure1;
//! use fsim_labels::LabelFn;
//!
//! let f = figure1();
//! let cfg = FsimConfig::new(Variant::Bijective).label_fn(LabelFn::Indicator);
//! let result = compute(&f.pattern, &f.data, &cfg).unwrap();
//! // u is exactly bj-simulated by v4 only:
//! assert!(result.get(f.u, f.v[3]).unwrap() > 0.999);
//! assert!(result.get(f.u, f.v[0]).unwrap() < 0.999);
//! ```
//!
//! For repeated queries over one graph pair — θ sweeps, variant
//! comparisons, top-k passes — build a reusable [`FsimEngine`] session
//! instead of calling [`compute`] in a loop:
//!
//! ```
//! use fsim_core::{FsimConfig, FsimEngine, Variant};
//! use fsim_graph::examples::figure1;
//! use fsim_labels::LabelFn;
//!
//! let f = figure1();
//! let cfg = FsimConfig::new(Variant::Simple).label_fn(LabelFn::Indicator);
//! let mut engine = FsimEngine::new(&f.pattern, &f.data, &cfg).unwrap();
//! engine.run();
//! for theta in [0.0, 0.5, 1.0] {
//!     engine.rerun(|c| c.theta = theta).unwrap();
//!     assert!(engine.score(f.u, f.v[3]) > 0.999);
//! }
//! ```

#![warn(missing_docs)]

pub mod candidates;
pub mod config;
pub mod engine;
pub mod operators;
pub mod presets;
pub mod result;
pub mod snapshot;
pub mod store;
pub mod topk;

pub use config::{
    ConfigError, ConvergenceMode, FsimConfig, InitScheme, LabelTermMode, MatcherKind, ShardSpec,
    UpperBoundPruning, Variant,
};
pub use engine::{
    all_variants, compute, compute_with_operator, live_runtime_workers, scan_snapshot_dir,
    score_on_demand, EditError, FsimEngine, GraphEdit, GraphSide,
};
pub use fsim_snapshot::SnapshotError;
pub use operators::{
    force_scalar_kernel, scalar_kernel_forced, DepEntry, LabelEval, OpCtx, OpScratch, Operator,
    ScoreLookup, SimRankOp, VariantOp,
};
pub use presets::{
    bounded_fsim, kbisim_via_framework, milner_config, rolesim_via_framework, simrank_config,
    simrank_via_framework,
};
pub use result::FsimResult;
pub use snapshot::{score_hash, ScoreSnapshot};
pub use topk::{top_k_pairs, top_k_search, TopK};
