#!/usr/bin/env python3
"""Compare two BENCH_convergence.json records (baseline vs candidate —
in CI: the default portable-lane build vs the `simd`-feature build).

Fails (exit 1) if, for any workload present in both records:
  * `score_hash` differs — the builds disagree bitwise, which breaks the
    engine's core contract; or
  * the candidate's kernel throughput (`kernel.vectorized_pps`) regresses
    more than the allowed fraction (default 10%) against the baseline.

Usage: check_kernel_parity.py BASELINE.json CANDIDATE.json [max_regression]
"""

import json
import sys


def load(path):
    with open(path) as f:
        record = json.load(f)
    return {w["workload"]: w for w in record["workloads"]}


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    candidate = load(sys.argv[2])
    max_regression = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10

    shared = sorted(baseline.keys() & candidate.keys())
    if not shared:
        sys.exit("no common workloads between the two records")

    failures = []
    for name in shared:
        b, c = baseline[name], candidate[name]
        if b["score_hash"] != c["score_hash"]:
            failures.append(
                f"{name}: bitwise divergence — score_hash {b['score_hash']} "
                f"(baseline) vs {c['score_hash']} (candidate)"
            )
        b_pps = b["kernel"]["vectorized_pps"]
        c_pps = c["kernel"]["vectorized_pps"]
        if b_pps > 0 and c_pps < (1.0 - max_regression) * b_pps:
            failures.append(
                f"{name}: kernel throughput regressed "
                f"{100.0 * (1.0 - c_pps / b_pps):.1f}% "
                f"({b_pps:.3e} -> {c_pps:.3e} pairs/s, "
                f"allowed {100.0 * max_regression:.0f}%)"
            )
        print(
            f"{name}: score_hash {c['score_hash']} ok, "
            f"kernel pps {b_pps:.3e} -> {c_pps:.3e}"
        )

    if failures:
        sys.exit("\n".join(["KERNEL PARITY FAILURES:"] + failures))
    print(f"kernel parity ok across {len(shared)} workload(s)")


if __name__ == "__main__":
    main()
