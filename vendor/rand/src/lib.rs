//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`RngCore`] / [`Rng`] / [`SeedableRng`], uniform range sampling,
//! [`seq::SliceRandom`] and [`distributions::WeightedIndex`]. Semantics
//! follow the upstream crate; exact output streams are NOT guaranteed to
//! match upstream bit-for-bit (nothing in this workspace depends on that —
//! only on seeded determinism, which this crate provides).

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in chunks.by_ref() {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded with SplitMix64
    /// (the same expansion upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A uniform `[0, 1)` double from 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply bounded sampling (Lemire); the tiny
                // modulo bias is irrelevant for synthetic-data generation.
                let r = rng.next_u64() as u128;
                self.start + ((r * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let r = rng.next_u64() as u128;
                start + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// Samples from a [`distributions::Distribution`].
    #[inline]
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The distribution slice of `rand::distributions` used here:
    //! [`Distribution`] and [`WeightedIndex`].

    use super::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from an invalid weight set.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// A weighted index distribution: samples `i ∈ 0..n` with probability
    /// proportional to `weights[i]`.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _weights: std::marker::PhantomData<X>,
    }

    impl<X: Copy + Into<f64>> WeightedIndex<X> {
        /// Builds the distribution; weights must be non-negative, finite,
        /// and sum to a positive value.
        pub fn new<I: IntoIterator<Item = X>>(weights: I) -> Result<Self, WeightedError> {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(Self {
                cumulative,
                total,
                _weights: std::marker::PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = super::unit_f64(rng) * self.total;
            // First index whose cumulative weight exceeds x.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).unwrap())
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (`rand::seq::SliceRandom`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::*;

    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — enough quality for the statistical assertions.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StepRng(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StepRng(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StepRng(3);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StepRng(11);
        let w = WeightedIndex::new(vec![0.0f64, 1.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight must never be drawn");
        assert!(
            counts[2] > counts[1] * 4,
            "9:1 skew expected, got {counts:?}"
        );
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(vec![0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new(vec![-1.0f64]).is_err());
        assert!(WeightedIndex::new(vec![f64::NAN]).is_err());
    }
}
