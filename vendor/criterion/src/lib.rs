//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this crate provides the
//! Criterion API surface the `fsim-bench` targets use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, the `criterion_group!`
//! / `criterion_main!` macros and `black_box` — backed by a simple but
//! honest wall-clock sampler: per benchmark it runs one warm-up batch, then
//! `sample_size` timed batches, and reports min / median / mean per-
//! iteration times. Under `cargo test` (the harness passes `--test`) each
//! benchmark executes a single iteration as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement batch; fast closures are looped
/// enough times to reach it so timer resolution doesn't dominate.
const BATCH_TARGET: Duration = Duration::from_millis(25);

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times it.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Measures `f`, recording per-iteration seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up + batch sizing: grow the batch until it fills the target.
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || batch >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 8.0)
            };
            batch = ((batch as f64 * grow).ceil() as usize).max(batch + 1);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_one(label: &str, sample_size: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("bench {label} ... ok (test mode, 1 iteration)");
        return;
    }
    if samples.is_empty() {
        println!("bench {label} ... no samples recorded");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {label:<48} median {:>10}   (min {}, mean {}, {} samples)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(mean),
        samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` enables smoke
    /// mode; a bare string filters benchmarks by substring; Criterion
    /// flags are accepted and ignored).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "--noplot" | "--ignored"
                | "--exact" | "--include-ignored" => {}
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        c.sample_size = v;
                    }
                }
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--color" | "--output-format" => {
                    args.next();
                }
                other if !other.starts_with('-') => c.filter = Some(other.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Chainable no-op kept for Criterion API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn enabled(&self, label: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| label.contains(f))
            .unwrap_or(true)
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.enabled(id) {
            run_one(id, self.sample_size, self.test_mode, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        if !self.test_mode {
            println!("benchmarks complete");
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.c.sample_size)
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        if self.c.enabled(&label) {
            run_one(
                &label,
                self.effective_sample_size(),
                self.c.test_mode,
                &mut f,
            );
        }
        self
    }

    /// Benchmarks a closure that receives `input`, under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        if self.c.enabled(&label) {
            run_one(
                &label,
                self.effective_sample_size(),
                self.c.test_mode,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_test_mode() {
        let mut samples = Vec::new();
        let mut count = 0;
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: 5,
            test_mode: true,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1, "test mode runs exactly one iteration");
        assert!(samples.is_empty());
    }

    #[test]
    fn bencher_collects_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: 3,
            test_mode: false,
        };
        b.iter(|| std::hint::black_box(7u64.pow(3)));
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("bj").id, "bj");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
