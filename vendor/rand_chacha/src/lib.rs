//! Vendored stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! Implements the actual ChaCha stream cipher core (Bernstein 2008) with 8
//! double-rounds, keyed from the 32-byte seed, used purely as a fast
//! high-quality deterministic PRNG. Output streams are not guaranteed to be
//! bit-identical to the upstream crate; every consumer in this workspace
//! needs seeded determinism only.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based seedable random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state words (the constant words are re-inserted per
    /// block).
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k"
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits, expect ~32000 ones; allow generous slack.
        assert!((30000..34000).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn zero_block_matches_chacha_structure() {
        // With an all-zero key the first block must differ from the raw
        // constants (i.e. rounds actually ran) and be stable.
        let mut a = ChaCha8Rng::from_seed([0u8; 32]);
        let mut b = ChaCha8Rng::from_seed([0u8; 32]);
        let first = a.next_u32();
        assert_ne!(first, 0x6170_7865);
        assert_eq!(first, b.next_u32());
    }
}
